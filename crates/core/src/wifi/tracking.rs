//! Sequential localization: smoothing a *stream* of NObLe fixes.
//!
//! The paper's title promises localization *and tracking*; for WiFi the
//! tracking story is a walker scanning periodically while moving. Raw
//! per-scan fixes jump between neighborhood centroids; this module adds
//! the standard post-processing — an exponentially weighted
//! constant-velocity smoother with optional map projection — turning
//! independent fixes into a coherent trajectory.
//!
//! This is an extension beyond the paper's evaluation (documented in
//! DESIGN.md §6); it reuses only public NObLe outputs and the map
//! substrate, so it works with any per-fix localizer.
//!
//! [`ZoneDetector`] is the second tracking primitive: it debounces a
//! per-fix zone-membership stream into stable entered/left transitions
//! (`stability_k` consecutive agreeing fixes commit a change), which is
//! what the `noble-serve` session layer turns into per-device zone
//! events.

use noble_geo::{CampusMap, Point};

/// Configuration of the trajectory smoother.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmootherConfig {
    /// Blend factor for new fixes in `[0, 1]`: 1.0 trusts each fix
    /// entirely (no smoothing), small values trust the motion model.
    pub fix_weight: f64,
    /// Velocity damping per step in `[0, 1]` (0 disables the motion
    /// model; 1 keeps full inertia).
    pub velocity_retention: f64,
    /// Maximum speed in meters per step; motion beyond this is clamped
    /// (pedestrian plausibility constraint).
    pub max_step_m: f64,
    /// Whether to project each smoothed state onto the map's accessible
    /// space.
    pub snap_to_map: bool,
}

impl Default for SmootherConfig {
    fn default() -> Self {
        SmootherConfig {
            fix_weight: 0.6,
            velocity_retention: 0.7,
            max_step_m: 5.0,
            snap_to_map: true,
        }
    }
}

/// An exponentially weighted constant-velocity smoother over position
/// fixes.
///
/// # Example
///
/// ```
/// use noble::wifi::tracking::{SmootherConfig, TrajectorySmoother};
/// use noble_geo::Point;
///
/// let mut smoother = TrajectorySmoother::new(SmootherConfig {
///     snap_to_map: false,
///     ..SmootherConfig::default()
/// });
/// let fixes = [Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(9.0, 0.0)];
/// let track: Vec<Point> = fixes.iter().map(|&f| smoother.update(f, None)).collect();
/// // The 8 m jump of the last fix is tempered by the motion model.
/// assert!(track[2].x < 9.0);
/// ```
#[derive(Debug, Clone)]
pub struct TrajectorySmoother {
    config: SmootherConfig,
    state: Option<(Point, Point)>, // (position, velocity per step)
}

impl TrajectorySmoother {
    /// Creates a smoother; the first fix initializes the state verbatim.
    pub fn new(config: SmootherConfig) -> Self {
        TrajectorySmoother {
            config,
            state: None,
        }
    }

    /// Current smoothed position, if any fix has been consumed.
    pub fn position(&self) -> Option<Point> {
        self.state.map(|(p, _)| p)
    }

    /// Resets the smoother to its initial empty state.
    pub fn reset(&mut self) {
        self.state = None;
    }

    /// Consumes one fix and returns the smoothed position. Pass the map
    /// for accessible-space snapping when [`SmootherConfig::snap_to_map`]
    /// is on.
    pub fn update(&mut self, fix: Point, map: Option<&CampusMap>) -> Point {
        let cfg = self.config;
        let snap = |p: Point| match (cfg.snap_to_map, map) {
            (true, Some(m)) => m.project(p),
            _ => p,
        };
        match self.state {
            None => {
                let position = snap(fix);
                self.state = Some((position, Point::ORIGIN));
                position
            }
            Some((pos, vel)) => {
                // Predict with the motion model, then blend in the fix.
                let predicted = pos + vel * cfg.velocity_retention;
                let blended = predicted.lerp(fix, cfg.fix_weight.clamp(0.0, 1.0));
                // Pedestrian plausibility: clamp the step length.
                let step = blended - pos;
                let clamped = if step.length() > cfg.max_step_m {
                    pos + step * (cfg.max_step_m / step.length())
                } else {
                    blended
                };
                let position = snap(clamped);
                // The velocity must describe the motion of the *stored*
                // (snapped) state. An earlier revision kept
                // `clamped - pos` here, so with snapping on, a track
                // pressed against a wall accumulated phantom velocity
                // pointing off-map every step.
                let new_vel = position - pos;
                self.state = Some((position, new_vel));
                position
            }
        }
    }

    /// Smooths a whole fix sequence at once.
    pub fn smooth_sequence(&mut self, fixes: &[Point], map: Option<&CampusMap>) -> Vec<Point> {
        fixes.iter().map(|&f| self.update(f, map)).collect()
    }
}

/// A committed zone change reported by [`ZoneDetector::observe`].
///
/// `left` is the zone the track departed (`None` when it was outside
/// every zone) and `entered` the zone it settled in (`None` when it
/// settled outside). At least one side is always `Some` — a transition
/// from outside to outside is not a transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneTransition {
    /// Zone index departed, if the track was in one.
    pub left: Option<usize>,
    /// Zone index settled into, if any.
    pub entered: Option<usize>,
}

/// Zone membership with stability hysteresis: a per-fix zone stream
/// (`Some(zone index)` or `None` for "outside every zone") commits a
/// transition only after `stability_k` *consecutive* fixes agree on the
/// new zone.
///
/// Raw per-fix zone lookups flap: a track walking a corridor along a
/// room boundary resolves to a different side scan by scan. The
/// detector is the standard debounce (BLE room trackers call it a
/// *room stability threshold*): observations matching the current zone
/// reset the pending candidate; a change of candidate restarts the
/// count; only a full window of agreement commits. Two committed
/// transitions are therefore always at least `stability_k` observations
/// apart, and alternating boundary jitter never commits at all.
///
/// The detector is a pure, allocation-free state machine — the sharded
/// session layer in `noble-serve` holds one per device, and its
/// determinism contract (same observation sequence ⇒ same event
/// sequence, regardless of sharding or threading) reduces to this
/// struct being deterministic, which it trivially is.
///
/// # Example
///
/// ```
/// use noble::wifi::tracking::ZoneDetector;
///
/// let mut d = ZoneDetector::new(2);
/// assert_eq!(d.observe(Some(0)), None); // 1 of 2
/// let t = d.observe(Some(0)).unwrap(); // 2 of 2: committed
/// assert_eq!((t.left, t.entered), (None, Some(0)));
/// assert_eq!(d.observe(Some(1)), None); // boundary jitter...
/// assert_eq!(d.observe(Some(0)), None); // ...never commits
/// assert_eq!(d.current(), Some(0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneDetector {
    stability_k: u32,
    current: Option<usize>,
    /// Pending zone (`Some(None)` = pending "outside"); `None` = no
    /// pending change.
    candidate: Option<Option<usize>>,
    streak: u32,
}

impl ZoneDetector {
    /// Creates a detector requiring `stability_k` consecutive agreeing
    /// fixes (0 is treated as 1: every change commits immediately). The
    /// initial state is outside every zone.
    pub fn new(stability_k: u32) -> Self {
        ZoneDetector {
            stability_k: stability_k.max(1),
            current: None,
            candidate: None,
            streak: 0,
        }
    }

    /// The committed zone, if the track has settled in one.
    pub fn current(&self) -> Option<usize> {
        self.current
    }

    /// The configured stability window.
    pub fn stability_k(&self) -> u32 {
        self.stability_k
    }

    /// Consumes one per-fix zone observation; returns the transition if
    /// this observation completed a stability window.
    pub fn observe(&mut self, zone: Option<usize>) -> Option<ZoneTransition> {
        if zone == self.current {
            // Agreement with the committed zone cancels any pending
            // change — the jitter never lasted a full window.
            self.candidate = None;
            self.streak = 0;
            return None;
        }
        if self.candidate == Some(zone) {
            self.streak += 1;
        } else {
            self.candidate = Some(zone);
            self.streak = 1;
        }
        if self.streak < self.stability_k {
            return None;
        }
        let transition = ZoneTransition {
            left: self.current,
            entered: zone,
        };
        self.current = zone;
        self.candidate = None;
        self.streak = 0;
        Some(transition)
    }

    /// Forces the track out of its committed zone (the away-timeout
    /// path: the device went silent, so the session layer closes its
    /// zone membership without waiting for fixes). Returns the zone
    /// left, if there was one; pending candidates are discarded either
    /// way.
    pub fn force_leave(&mut self) -> Option<usize> {
        self.candidate = None;
        self.streak = 0;
        self.current.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noble_geo::{Building, Polygon};

    fn no_snap() -> SmootherConfig {
        SmootherConfig {
            snap_to_map: false,
            ..SmootherConfig::default()
        }
    }

    #[test]
    fn first_fix_passes_through() {
        let mut s = TrajectorySmoother::new(no_snap());
        assert_eq!(s.position(), None);
        let p = s.update(Point::new(3.0, 4.0), None);
        assert_eq!(p, Point::new(3.0, 4.0));
        assert_eq!(s.position(), Some(p));
    }

    #[test]
    fn outlier_fix_is_tempered() {
        let mut s = TrajectorySmoother::new(no_snap());
        s.update(Point::new(0.0, 0.0), None);
        s.update(Point::new(1.0, 0.0), None);
        let p = s.update(Point::new(50.0, 0.0), None);
        // max_step 5 m caps the jump.
        assert!(p.x <= 1.0 + 5.0 + 1e-9, "outlier not clamped: {p}");
    }

    #[test]
    fn steady_walk_tracks_closely() {
        let mut s = TrajectorySmoother::new(no_snap());
        let mut last = Point::ORIGIN;
        for i in 0..20 {
            let fix = Point::new(i as f64 * 1.2, 0.0);
            last = s.update(fix, None);
        }
        // After settling, the smoothed track stays within a step of truth.
        assert!((last.x - 19.0 * 1.2).abs() < 2.0, "lag too large: {last}");
    }

    #[test]
    fn snapping_keeps_track_on_map() {
        let map = CampusMap::new(vec![Building::new(
            Polygon::rectangle(0.0, 0.0, 20.0, 4.0).unwrap(),
            1,
        )
        .unwrap()])
        .unwrap();
        let mut s = TrajectorySmoother::new(SmootherConfig::default());
        for i in 0..10 {
            // Noisy fixes that sometimes leave the corridor.
            let fix = Point::new(i as f64 * 2.0, if i % 2 == 0 { 6.0 } else { 2.0 });
            let p = s.update(fix, Some(&map));
            assert!(map.is_accessible(p), "smoothed point {p} off map");
        }
    }

    #[test]
    fn wall_adjacent_track_accumulates_no_phantom_velocity() {
        // Regression: velocity used to be computed from the pre-snap
        // position, so a track pinned against a wall by off-map fixes
        // accumulated a constant phantom velocity pointing off-map
        // (fixed point ~1.67 m/step with the default config below).
        let map = CampusMap::new(vec![Building::new(
            Polygon::rectangle(0.0, 0.0, 20.0, 4.0).unwrap(),
            1,
        )
        .unwrap()])
        .unwrap();
        let mut s = TrajectorySmoother::new(SmootherConfig::default());

        // Press the track against the y = 4 wall with off-map fixes.
        let wall = s.update(Point::new(2.0, 6.0), Some(&map));
        assert_eq!(wall, Point::new(2.0, 4.0));
        for _ in 0..10 {
            let p = s.update(Point::new(2.0, 6.0), Some(&map));
            // The smoothed state is stationary at the wall...
            assert!(p.distance(wall) < 1e-9, "track drifted to {p}");
        }

        // ...so a fix back inside must be tracked like from standstill:
        // blended y = (1 - fix_weight) * 4 + fix_weight * 2 = 2.8. With the
        // phantom velocity bug the prediction overshoots off-map first and
        // the response lands at y ≈ 3.27.
        let inside = s.update(Point::new(2.0, 2.0), Some(&map));
        assert!(
            inside.y < 3.0,
            "phantom velocity is dragging the track toward the wall: {inside}"
        );
        assert!(
            (inside.y - 2.8).abs() < 1e-9,
            "unexpected response {inside}"
        );
    }

    #[test]
    fn reset_clears_state() {
        let mut s = TrajectorySmoother::new(no_snap());
        s.update(Point::new(1.0, 1.0), None);
        s.reset();
        assert_eq!(s.position(), None);
        // Next fix re-initializes verbatim.
        let p = s.update(Point::new(9.0, 9.0), None);
        assert_eq!(p, Point::new(9.0, 9.0));
    }

    #[test]
    fn smooth_sequence_matches_iterated_updates() {
        let fixes = vec![
            Point::new(0.0, 0.0),
            Point::new(1.5, 0.2),
            Point::new(2.8, 0.1),
        ];
        let mut a = TrajectorySmoother::new(no_snap());
        let seq = a.smooth_sequence(&fixes, None);
        let mut b = TrajectorySmoother::new(no_snap());
        let manual: Vec<Point> = fixes.iter().map(|&f| b.update(f, None)).collect();
        assert_eq!(seq, manual);
    }

    #[test]
    fn detector_commits_only_after_full_window() {
        let mut d = ZoneDetector::new(3);
        assert_eq!(d.current(), None);
        assert_eq!(d.observe(Some(2)), None);
        assert_eq!(d.observe(Some(2)), None);
        let t = d.observe(Some(2)).unwrap();
        assert_eq!(
            t,
            ZoneTransition {
                left: None,
                entered: Some(2)
            }
        );
        assert_eq!(d.current(), Some(2));
        // Leaving needs a full window of "outside" too.
        assert_eq!(d.observe(None), None);
        assert_eq!(d.observe(None), None);
        let t = d.observe(None).unwrap();
        assert_eq!(
            t,
            ZoneTransition {
                left: Some(2),
                entered: None
            }
        );
        assert_eq!(d.current(), None);
    }

    #[test]
    fn detector_boundary_jitter_never_commits() {
        let mut d = ZoneDetector::new(2);
        d.observe(Some(0));
        d.observe(Some(0));
        assert_eq!(d.current(), Some(0));
        // Alternating 0/1 observations: the candidate streak restarts on
        // every flip and agreement with the current zone clears it.
        for _ in 0..50 {
            assert_eq!(d.observe(Some(1)), None);
            assert_eq!(d.observe(Some(0)), None);
        }
        assert_eq!(d.current(), Some(0));
    }

    #[test]
    fn detector_candidate_switch_restarts_the_window() {
        let mut d = ZoneDetector::new(3);
        assert_eq!(d.observe(Some(0)), None);
        assert_eq!(d.observe(Some(0)), None);
        // Third observation disagrees: zone 1 starts its own window.
        assert_eq!(d.observe(Some(1)), None);
        assert_eq!(d.observe(Some(1)), None);
        let t = d.observe(Some(1)).unwrap();
        assert_eq!(t.entered, Some(1));
    }

    #[test]
    fn detector_direct_zone_to_zone_transition() {
        let mut d = ZoneDetector::new(1);
        assert_eq!(
            d.observe(Some(0)),
            Some(ZoneTransition {
                left: None,
                entered: Some(0)
            })
        );
        // k = 1: the change commits immediately, carrying both sides.
        assert_eq!(
            d.observe(Some(4)),
            Some(ZoneTransition {
                left: Some(0),
                entered: Some(4)
            })
        );
        assert_eq!(d.current(), Some(4));
    }

    #[test]
    fn detector_force_leave_closes_membership_once() {
        let mut d = ZoneDetector::new(2);
        d.observe(Some(3));
        d.observe(Some(3));
        assert_eq!(d.force_leave(), Some(3));
        assert_eq!(d.current(), None);
        // Idempotent: nothing left to leave.
        assert_eq!(d.force_leave(), None);
        // And a pending candidate is discarded by the forced leave.
        d.observe(Some(1));
        assert_eq!(d.force_leave(), None);
        assert_eq!(d.observe(Some(1)), None);
        assert_eq!(d.observe(Some(1)).unwrap().entered, Some(1));
    }

    #[test]
    fn detector_zero_k_behaves_as_one() {
        let mut d = ZoneDetector::new(0);
        assert_eq!(d.stability_k(), 1);
        assert_eq!(d.observe(Some(7)).unwrap().entered, Some(7));
    }

    #[test]
    fn fix_weight_one_follows_fixes_exactly_when_unclamped() {
        let mut s = TrajectorySmoother::new(SmootherConfig {
            fix_weight: 1.0,
            velocity_retention: 0.0,
            max_step_m: 1e9,
            snap_to_map: false,
        });
        for i in 0..5 {
            let fix = Point::new(i as f64 * 3.0, 1.0);
            assert_eq!(s.update(fix, None), fix);
        }
    }
}
