//! Snapshot (de)serialization of the WiFi models: [`WifiNoble`] and the
//! [`KnnFingerprint`] radio-map baseline.
//!
//! Both payloads carry *everything* inference touches — network
//! architecture, parameters with batch-norm running statistics,
//! quantizer tables, radio maps — so a hydrated model localizes
//! **bit-identically** to the one that produced the snapshot (pinned by
//! the `snapshot_roundtrip` suite).

use super::baselines::KnnFingerprint;
use super::model::WifiNoble;
use super::{KNN_FINGERPRINT_KIND, WIFI_NOBLE_KIND};
use crate::snapshot::{
    bad, read_layout, read_mlp, read_quantizer, write_layout, write_mlp_with, write_quantizer,
    ModelSnapshot, SnapReader, SnapWriter,
};
use crate::{NobleError, ParamEncoding, SnapshotLocalizer};
use noble_manifold::KdTree;

/// Payload format version of [`WifiNoble`] snapshots.
const WIFI_PAYLOAD_VERSION: u32 = 1;

/// Payload format version of [`KnnFingerprint`] snapshots.
const KNN_PAYLOAD_VERSION: u32 = 1;

impl SnapshotLocalizer for WifiNoble {
    fn snapshot(&self) -> ModelSnapshot {
        self.snapshot_with(ParamEncoding::F64)
    }

    fn snapshot_with(&self, encoding: ParamEncoding) -> ModelSnapshot {
        let mut w = SnapWriter::new();
        w.u32(WIFI_PAYLOAD_VERSION);
        write_mlp_with(&mut w, &self.mlp, encoding);
        write_layout(&mut w, &self.layout);
        write_quantizer(&mut w, &self.fine);
        match &self.coarse {
            Some(c) => {
                w.u8(1);
                write_quantizer(&mut w, c);
            }
            None => w.u8(0),
        }
        ModelSnapshot::new(
            WIFI_NOBLE_KIND,
            self.feature_dim(),
            self.class_count(),
            w.buf,
        )
    }
}

impl WifiNoble {
    /// Rebuilds a model from a [`WIFI_NOBLE_KIND`] snapshot.
    ///
    /// # Errors
    ///
    /// [`NobleError::BadSnapshot`] on a wrong kind tag, payload version
    /// skew, corruption, or metadata that disagrees with the payload.
    pub fn from_snapshot(snapshot: &ModelSnapshot) -> Result<Self, NobleError> {
        if snapshot.kind() != WIFI_NOBLE_KIND {
            return Err(bad(format!(
                "expected a {WIFI_NOBLE_KIND} snapshot, found '{}'",
                snapshot.kind()
            )));
        }
        let mut r = SnapReader::new(snapshot.payload());
        let version = r.u32()?;
        if version != WIFI_PAYLOAD_VERSION {
            return Err(bad(format!(
                "unsupported {WIFI_NOBLE_KIND} payload version {version}"
            )));
        }
        let mlp = read_mlp(&mut r)?;
        let layout = read_layout(&mut r)?;
        let fine = read_quantizer(&mut r)?;
        let coarse = match r.u8()? {
            0 => None,
            1 => Some(read_quantizer(&mut r)?),
            t => return Err(bad(format!("bad coarse-quantizer flag {t}"))),
        };
        r.finish()?;

        let head = |name: &str| {
            layout
                .head_index(name)
                .ok_or_else(|| bad(format!("snapshot layout is missing the '{name}' head")))
        };
        let model = WifiNoble {
            head_building: head("building")?,
            head_floor: head("floor")?,
            head_fine: head("fine")?,
            mlp,
            layout,
            fine,
            coarse,
        };
        if model.mlp.out_dim() != model.layout.total_width() {
            return Err(bad(format!(
                "network output width {} disagrees with layout width {}",
                model.mlp.out_dim(),
                model.layout.total_width()
            )));
        }
        if model.feature_dim() != snapshot.feature_dim()
            || model.class_count() != snapshot.class_count()
        {
            return Err(bad(
                "snapshot header metadata disagrees with payload".to_string()
            ));
        }
        Ok(model)
    }
}

impl SnapshotLocalizer for KnnFingerprint {
    fn snapshot(&self) -> ModelSnapshot {
        let mut w = SnapWriter::new();
        w.u32(KNN_PAYLOAD_VERSION);
        w.u64(self.k as u64);
        w.u64(self.feature_dim as u64);
        // The tree rebuilds deterministically from its point rows, so the
        // radio map is the only geometry that travels.
        w.matrix(self.tree.points());
        w.points(&self.positions);
        w.usizes(&self.buildings);
        w.usizes(&self.floors);
        ModelSnapshot::new(KNN_FINGERPRINT_KIND, self.feature_dim, 0, w.buf)
    }
}

impl KnnFingerprint {
    /// Rebuilds a radio map from a [`KNN_FINGERPRINT_KIND`] snapshot.
    ///
    /// # Errors
    ///
    /// [`NobleError::BadSnapshot`] on a wrong kind tag, version skew,
    /// corruption, or label tables whose lengths disagree with the radio
    /// map.
    pub fn from_snapshot(snapshot: &ModelSnapshot) -> Result<Self, NobleError> {
        if snapshot.kind() != KNN_FINGERPRINT_KIND {
            return Err(bad(format!(
                "expected a {KNN_FINGERPRINT_KIND} snapshot, found '{}'",
                snapshot.kind()
            )));
        }
        let mut r = SnapReader::new(snapshot.payload());
        let version = r.u32()?;
        if version != KNN_PAYLOAD_VERSION {
            return Err(bad(format!(
                "unsupported {KNN_FINGERPRINT_KIND} payload version {version}"
            )));
        }
        let k = r.usize()?;
        let feature_dim = r.usize()?;
        let radio_map = r.matrix()?;
        let positions = r.points()?;
        let buildings = r.usizes()?;
        let floors = r.usizes()?;
        r.finish()?;

        if k == 0 {
            return Err(bad("k must be positive".to_string()));
        }
        if radio_map.rows() == 0 {
            return Err(bad("radio map is empty".to_string()));
        }
        if radio_map.cols() != feature_dim {
            return Err(bad(format!(
                "radio map width {} disagrees with feature dim {feature_dim}",
                radio_map.cols()
            )));
        }
        let n = radio_map.rows();
        if positions.len() != n || buildings.len() != n || floors.len() != n {
            return Err(bad(format!(
                "label tables ({}, {}, {}) disagree with {n} radio-map rows",
                positions.len(),
                buildings.len(),
                floors.len()
            )));
        }
        if feature_dim != snapshot.feature_dim() {
            return Err(bad(
                "snapshot header metadata disagrees with payload".to_string()
            ));
        }
        Ok(KnnFingerprint {
            tree: KdTree::build(&radio_map),
            positions,
            buildings,
            floors,
            k,
            feature_dim,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hydrate, Localizer};
    use noble_datasets::{uji_campaign, UjiConfig};

    #[test]
    fn knn_round_trip_is_bit_identical() {
        let mut cfg = UjiConfig::small();
        cfg.seed = 42;
        let campaign = uji_campaign(&cfg).unwrap();
        let model = KnnFingerprint::fit(&campaign, 4).unwrap();
        let snap = SnapshotLocalizer::snapshot(&model);
        assert_eq!(snap.kind(), KNN_FINGERPRINT_KIND);

        let mut back = hydrate(&snap).unwrap();
        let features = campaign.features(&campaign.test);
        let mut original: Box<dyn Localizer> = Box::new(model);
        assert_eq!(
            original.localize_batch(&features).unwrap(),
            back.localize_batch(&features).unwrap()
        );
        assert_eq!(original.info().feature_dim, back.info().feature_dim);
    }

    #[test]
    fn knn_rejects_inconsistent_tables() {
        let mut cfg = UjiConfig::small();
        cfg.seed = 42;
        let campaign = uji_campaign(&cfg).unwrap();
        let model = KnnFingerprint::fit(&campaign, 4).unwrap();
        let snap = SnapshotLocalizer::snapshot(&model);
        // Re-label the payload as the wrong kind.
        let wrong = ModelSnapshot::new(
            WIFI_NOBLE_KIND,
            snap.feature_dim(),
            0,
            snap.payload().to_vec(),
        );
        assert!(KnnFingerprint::from_snapshot(&snap).is_ok());
        assert!(KnnFingerprint::from_snapshot(&wrong).is_err());
        assert!(WifiNoble::from_snapshot(&wrong).is_err()); // corrupt payload
    }
}
