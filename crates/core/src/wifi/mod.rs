//! WiFi fingerprint localization (paper §IV).
//!
//! [`WifiNoble`] is the paper's system: space quantization of the output
//! coordinates (fine grid `τ`, optional coarse grid `l`), a two-hidden-layer
//! tanh/batch-norm network, and a multi-head output — building and floor
//! softmax heads plus the multi-label neighborhood-class head trained with
//! binary cross-entropy (Fig. 3). Inference decodes the predicted class to
//! its neighborhood's central coordinates.
//!
//! The module is split along the model's life cycle:
//!
//! - [`model`](self) — configuration, architecture and training
//!   ([`WifiNoble::train`]),
//! - decode — the inference paths ([`WifiNoble::predict`],
//!   [`WifiNoble::localize_batch`], probability-weighted decode,
//!   evaluation),
//! - localize — [`crate::Localizer`] impls for NObLe and the baselines,
//!   the serving layer's entry point.
//!
//! The comparison models of Table II live in [`baselines`].

pub mod baselines;
pub mod tracking;

mod decode;
mod localize;
mod model;
mod snapshot;

pub use baselines::KnnFingerprint;
pub use model::{WifiEvalReport, WifiNoble, WifiNobleConfig, WifiPrediction};

/// Snapshot kind tag of [`WifiNoble`] (also its
/// [`crate::LocalizerInfo::model`] label).
pub const WIFI_NOBLE_KIND: &str = "wifi-noble";

/// Snapshot kind tag of [`baselines::KnnFingerprint`].
pub const KNN_FINGERPRINT_KIND: &str = "knn-fingerprint";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::localizer::Localizer;
    use noble_datasets::{uji_campaign, UjiConfig, WifiCampaign};

    fn quick_campaign() -> WifiCampaign {
        let mut cfg = UjiConfig::small();
        cfg.seed = 42;
        uji_campaign(&cfg).unwrap()
    }

    #[test]
    fn trains_and_beats_chance() {
        let campaign = quick_campaign();
        let mut model = WifiNoble::train(&campaign, &WifiNobleConfig::small()).unwrap();
        let report = model.evaluate(&campaign, &campaign.test).unwrap();
        // 3 buildings: chance = 1/3. The model must be far above that.
        assert!(
            report.building_accuracy > 0.8,
            "building accuracy {}",
            report.building_accuracy
        );
        assert!(
            report.position_error.mean < 60.0,
            "mean {}",
            report.position_error.mean
        );
        // Decoded positions are training centroids, hence on the map.
        assert!(report.structure.on_map_fraction > 0.95);
    }

    #[test]
    fn predictions_decode_to_occupied_cells() {
        let campaign = quick_campaign();
        let mut model = WifiNoble::train(&campaign, &WifiNobleConfig::small()).unwrap();
        let features = campaign.features(&campaign.test[..5.min(campaign.test.len())]);
        let preds = model.predict(&features).unwrap();
        for p in &preds {
            assert!(p.fine_class < model.fine_quantizer().num_classes());
            assert!(p.building < campaign.map.building_count());
        }
    }

    #[test]
    fn localize_batch_matches_per_sample_path() {
        let campaign = quick_campaign();
        let mut model = WifiNoble::train(&campaign, &WifiNobleConfig::small()).unwrap();
        let features = campaign.features(&campaign.test[..12.min(campaign.test.len())]);
        let rows: Vec<Vec<f64>> = (0..features.rows())
            .map(|i| features.row(i).to_vec())
            .collect();

        let batched = model.localize_batch(&rows).unwrap();
        assert_eq!(batched.len(), rows.len());
        for (row, b) in rows.iter().zip(&batched) {
            let single = model.localize_one(row).unwrap();
            assert_eq!(single.fine_class, b.fine_class);
            assert_eq!(single.building, b.building);
            assert_eq!(single.floor, b.floor);
            // Kernel dispatch is per-row, so the batch ride-along changes
            // nothing — not even the last bit.
            assert_eq!(single.position, b.position);
        }
        // And both agree with the matrix-level predict path.
        let matrix_preds = model.predict(&features).unwrap();
        for (m, b) in matrix_preds.iter().zip(&batched) {
            assert_eq!(m, b);
        }
        assert!(model.localize_batch(&[]).unwrap().is_empty());
        assert!(model.localize_batch(&[vec![0.0], vec![0.0, 1.0]]).is_err());
    }

    #[test]
    fn localizer_trait_matches_inherent_path() {
        let campaign = quick_campaign();
        let mut model = WifiNoble::train(&campaign, &WifiNobleConfig::small()).unwrap();
        let features = campaign.features(&campaign.test[..8.min(campaign.test.len())]);

        let info = Localizer::info(&model);
        assert_eq!(info.model, "wifi-noble");
        assert_eq!(info.feature_dim, campaign.num_waps());
        assert_eq!(info.class_count, model.fine_quantizer().num_classes());

        let via_trait = Localizer::localize_batch(&mut model, &features).unwrap();
        let via_predict = model.predict(&features).unwrap();
        assert_eq!(via_trait.len(), via_predict.len());
        for (t, p) in via_trait.iter().zip(&via_predict) {
            assert_eq!(*t, p.position);
        }
        // Width mismatch is a typed error, not a panic.
        let bad = noble_linalg::Matrix::zeros(1, campaign.num_waps() + 1);
        assert!(Localizer::localize_batch(&mut model, &bad).is_err());
    }

    #[test]
    fn rejects_empty_campaign_and_bad_config() {
        let campaign = quick_campaign();
        let mut empty = campaign.clone();
        empty.train.clear();
        assert!(WifiNoble::train(&empty, &WifiNobleConfig::small()).is_err());

        let mut bad = WifiNobleConfig::small();
        bad.coarse_l = Some(bad.tau); // not strictly coarser
        assert!(WifiNoble::train(&campaign, &bad).is_err());
    }

    #[test]
    fn single_resolution_and_no_adjacency_also_train() {
        let campaign = quick_campaign();
        let mut cfg = WifiNobleConfig::small();
        cfg.coarse_l = None;
        cfg.adjacency_weight = None;
        cfg.epochs = 8;
        let mut model = WifiNoble::train(&campaign, &cfg).unwrap();
        assert!(model.coarse_quantizer().is_none());
        let report = model.evaluate(&campaign, &campaign.test).unwrap();
        assert!(report.position_error.mean.is_finite());
    }

    #[test]
    fn embedding_has_hidden_width() {
        let campaign = quick_campaign();
        let cfg = WifiNobleConfig::small();
        let mut model = WifiNoble::train(&campaign, &cfg).unwrap();
        let f = campaign.features(&campaign.test[..3.min(campaign.test.len())]);
        let e = model.embed(&f).unwrap();
        assert_eq!(e.cols(), cfg.hidden_dim);
    }

    #[test]
    fn evaluate_rejects_empty() {
        let campaign = quick_campaign();
        let mut model = WifiNoble::train(&campaign, &WifiNobleConfig::small()).unwrap();
        assert!(model.evaluate(&campaign, &[]).is_err());
    }

    #[test]
    fn expected_decode_stays_near_argmax_decode() {
        let campaign = quick_campaign();
        let mut model = WifiNoble::train(&campaign, &WifiNobleConfig::small()).unwrap();
        let features = campaign.features(&campaign.test[..8.min(campaign.test.len())]);
        let argmax_preds = model.predict(&features).unwrap();
        let expected = model.predict_expected(&features, 3).unwrap();
        assert_eq!(expected.len(), argmax_preds.len());

        // The expectation is a convex combination of fine-cell centroids, so
        // it must stay inside their bounding box, and its distance from the
        // arg-max centroid is bounded by the probability mass the model puts
        // on the *other* top-k cells times the largest centroid spread.
        let centroids: Vec<noble_geo::Point> = (0..model.fine_quantizer().num_classes())
            .map(|c| model.fine_quantizer().decode(c).unwrap())
            .collect();
        let min_x = centroids.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
        let max_x = centroids
            .iter()
            .map(|p| p.x)
            .fold(f64::NEG_INFINITY, f64::max);
        let min_y = centroids.iter().map(|p| p.y).fold(f64::INFINITY, f64::min);
        let max_y = centroids
            .iter()
            .map(|p| p.y)
            .fold(f64::NEG_INFINITY, f64::max);
        let spread = centroids
            .iter()
            .flat_map(|a| centroids.iter().map(move |b| a.distance(*b)))
            .fold(0.0f64, f64::max);
        for ((pos, confidence), amax) in expected.iter().zip(&argmax_preds) {
            assert!((0.0..=1.0).contains(confidence));
            assert!(
                (min_x - 1e-9..=max_x + 1e-9).contains(&pos.x)
                    && (min_y - 1e-9..=max_y + 1e-9).contains(&pos.y),
                "expected decode {pos} escapes the centroid bounding box"
            );
            assert!(
                pos.distance(amax.position) <= (1.0 - confidence) * spread + 1e-9,
                "expected decode {pos} vs argmax {} exceeds mass bound",
                amax.position
            );
        }
        assert!(model.predict_expected(&features, 0).is_err());
    }

    #[test]
    fn expected_decode_k1_matches_argmax() {
        let campaign = quick_campaign();
        let mut model = WifiNoble::train(&campaign, &WifiNobleConfig::small()).unwrap();
        let features = campaign.features(&campaign.test[..5.min(campaign.test.len())]);
        let argmax_preds = model.predict(&features).unwrap();
        let top1 = model.predict_expected(&features, 1).unwrap();
        for ((pos, _), amax) in top1.iter().zip(&argmax_preds) {
            assert!(pos.distance(amax.position) < 1e-9);
        }
    }
}
