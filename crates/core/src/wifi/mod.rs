//! WiFi fingerprint localization (paper §IV).
//!
//! [`WifiNoble`] is the paper's system: space quantization of the output
//! coordinates (fine grid `τ`, optional coarse grid `l`), a two-hidden-layer
//! tanh/batch-norm network, and a multi-head output — building and floor
//! softmax heads plus the multi-label neighborhood-class head trained with
//! binary cross-entropy (Fig. 3). Inference decodes the predicted class to
//! its neighborhood's central coordinates.
//!
//! The comparison models of Table II live in [`baselines`].

pub mod baselines;
pub mod tracking;

use crate::eval::{position_error_summary, StructureReport};
use crate::NobleError;
use noble_datasets::{WifiCampaign, WifiSample};
use noble_geo::Point;
use noble_linalg::{Matrix, Summary};
use noble_nn::{
    accuracy, Activation, EarlyStopping, HeadSpec, Mlp, MultiHeadLoss, Optimizer, OutputLayout,
    TrainConfig, Trainer,
};
use noble_quantize::{DecodePolicy, GridQuantizer, LabelEncoder};

/// Configuration of the NObLe WiFi localizer.
#[derive(Debug, Clone)]
pub struct WifiNobleConfig {
    /// Fine quantization cell side `τ` in meters (paper: < 0.2 m on dense
    /// reference grids; 1 m suits the synthetic campaign's density).
    pub tau: f64,
    /// Optional coarse cell side `l > τ` for the multi-resolution head.
    pub coarse_l: Option<f64>,
    /// Optional adjacency-expansion weight for the fine head's multi-hot
    /// labels (the paper's data-sparsity remedy; `1.0` = hard labels).
    pub adjacency_weight: Option<f64>,
    /// Class decode policy.
    pub decode_policy: DecodePolicy,
    /// Loss weight of the auxiliary building/floor heads. The paper argues
    /// the joint heads teach geodesic structure; `0.0` ablates them (they
    /// still predict, but receive no gradient).
    pub aux_head_weight: f64,
    /// Loss weight of the fine neighborhood-class head. Values above 1
    /// compensate for the per-class gradient dilution of wide heads.
    pub fine_head_weight: f64,
    /// Hidden width of the two hidden layers (paper: 128).
    pub hidden_dim: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Early-stopping patience on the validation loss (None disables).
    pub patience: Option<usize>,
    /// Seed for initialization and shuffling.
    pub seed: u64,
}

impl Default for WifiNobleConfig {
    fn default() -> Self {
        WifiNobleConfig {
            tau: 1.0,
            coarse_l: Some(8.0),
            adjacency_weight: None,
            decode_policy: DecodePolicy::SampleMean,
            aux_head_weight: 1.0,
            fine_head_weight: 4.0,
            hidden_dim: 128,
            epochs: 60,
            batch_size: 64,
            learning_rate: 1e-3,
            patience: Some(8),
            seed: 0xB0B,
        }
    }
}

impl WifiNobleConfig {
    /// A reduced configuration for unit tests.
    pub fn small() -> Self {
        WifiNobleConfig {
            tau: 4.0,
            coarse_l: Some(16.0),
            hidden_dim: 32,
            epochs: 25,
            batch_size: 32,
            learning_rate: 3e-3,
            patience: None,
            ..WifiNobleConfig::default()
        }
    }
}

/// One localization prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct WifiPrediction {
    /// Decoded position (neighborhood centroid).
    pub position: Point,
    /// Predicted building index.
    pub building: usize,
    /// Predicted floor index.
    pub floor: usize,
    /// Predicted fine neighborhood class.
    pub fine_class: usize,
}

/// Evaluation results in the shape of the paper's Table I.
#[derive(Debug, Clone)]
pub struct WifiEvalReport {
    /// Building hit rate.
    pub building_accuracy: f64,
    /// Floor hit rate.
    pub floor_accuracy: f64,
    /// Fine neighborhood-class hit rate.
    pub class_accuracy: f64,
    /// Position error distances in meters.
    pub position_error: Summary,
    /// Structure awareness of the predictions (Fig. 4 quantified).
    pub structure: StructureReport,
}

/// The trained NObLe WiFi localizer.
///
/// # Example
///
/// Train on a small synthetic campaign and localize its test fingerprints:
///
/// ```
/// use noble::wifi::{WifiNoble, WifiNobleConfig};
/// use noble_datasets::{uji_campaign, UjiConfig};
///
/// let campaign = uji_campaign(&UjiConfig::small()).unwrap();
/// let mut cfg = WifiNobleConfig::small();
/// cfg.epochs = 2; // keep the doctest fast; accuracy needs more
/// let mut model = WifiNoble::train(&campaign, &cfg).unwrap();
///
/// let features = campaign.features(&campaign.test);
/// let predictions = model.predict(&features).unwrap();
/// assert_eq!(predictions.len(), campaign.test.len());
/// assert!(predictions.iter().all(|p| p.position.x.is_finite()));
/// ```
#[derive(Debug, Clone)]
pub struct WifiNoble {
    mlp: Mlp,
    layout: OutputLayout,
    fine: GridQuantizer,
    coarse: Option<GridQuantizer>,
    head_building: usize,
    head_floor: usize,
    head_fine: usize,
}

impl WifiNoble {
    /// Trains NObLe on a campaign's offline fingerprints.
    ///
    /// # Errors
    ///
    /// Propagates quantizer, encoding and training failures;
    /// [`NobleError::InvalidData`] when the campaign has no training
    /// samples.
    pub fn train(campaign: &WifiCampaign, cfg: &WifiNobleConfig) -> Result<Self, NobleError> {
        if campaign.train.is_empty() {
            return Err(NobleError::InvalidData(
                "campaign has no training samples".into(),
            ));
        }
        let positions: Vec<Point> = campaign.train.iter().map(|s| s.position).collect();
        let fine = GridQuantizer::fit(&positions, cfg.tau, cfg.decode_policy)?;
        let coarse = match cfg.coarse_l {
            Some(l) => {
                if l <= cfg.tau {
                    return Err(NobleError::InvalidConfig(format!(
                        "coarse side {l} must exceed tau {}",
                        cfg.tau
                    )));
                }
                Some(GridQuantizer::fit(&positions, l, cfg.decode_policy)?)
            }
            None => None,
        };

        let num_buildings = campaign.map.building_count();
        let num_floors = campaign
            .map
            .buildings()
            .iter()
            .map(|b| b.floors())
            .max()
            .unwrap_or(1);

        // The fine head is multi-label sigmoid BCE (the paper's objective)
        // when adjacency expansion produces multi-hot targets; with plain
        // one-hot targets, softmax cross-entropy is the exact single-label
        // specialization and converges much faster over many classes.
        let fine_head = if cfg.adjacency_weight.is_some() {
            HeadSpec::multi_label("fine", fine.num_classes())
        } else {
            HeadSpec::softmax("fine", fine.num_classes())
        };
        let mut heads = vec![
            HeadSpec::softmax("building", num_buildings).with_weight(cfg.aux_head_weight),
            HeadSpec::softmax("floor", num_floors).with_weight(cfg.aux_head_weight),
            fine_head.with_weight(cfg.fine_head_weight),
        ];
        if let Some(c) = &coarse {
            heads.push(HeadSpec::softmax("coarse", c.num_classes()));
        }
        let layout = OutputLayout::new(heads)?;
        let head_building = layout.head_index("building").expect("declared above");
        let head_floor = layout.head_index("floor").expect("declared above");
        let head_fine = layout.head_index("fine").expect("declared above");

        let x = campaign.features(&campaign.train);
        let y = Self::targets(
            campaign,
            &campaign.train,
            &layout,
            &fine,
            coarse.as_ref(),
            cfg,
        )?;
        let (x_val, y_val);
        let validation = if campaign.val.is_empty() {
            None
        } else {
            x_val = campaign.features(&campaign.val);
            y_val = Self::targets(
                campaign,
                &campaign.val,
                &layout,
                &fine,
                coarse.as_ref(),
                cfg,
            )?;
            Some((&x_val, &y_val))
        };

        let mut mlp = Mlp::builder(campaign.num_waps(), cfg.seed)
            .dense(cfg.hidden_dim)
            .batch_norm()
            .activation(Activation::Tanh)
            .dense(cfg.hidden_dim)
            .batch_norm()
            .activation(Activation::Tanh)
            .dense(layout.total_width())
            .build();
        let loss = MultiHeadLoss::new(layout.clone());
        let train_cfg = TrainConfig {
            epochs: cfg.epochs,
            batch_size: cfg.batch_size,
            optimizer: Optimizer::adam(cfg.learning_rate),
            lr_decay: 0.985,
            shuffle_seed: cfg.seed ^ 0xA5,
            early_stopping: cfg.patience.map(|p| EarlyStopping {
                patience: p,
                min_delta: 1e-4,
            }),
            detect_divergence: true,
        };
        Trainer::new(train_cfg).fit(&mut mlp, &x, &y, &loss, validation)?;

        Ok(WifiNoble {
            mlp,
            layout,
            fine,
            coarse,
            head_building,
            head_floor,
            head_fine,
        })
    }

    fn targets(
        campaign: &WifiCampaign,
        samples: &[WifiSample],
        layout: &OutputLayout,
        fine: &GridQuantizer,
        coarse: Option<&GridQuantizer>,
        cfg: &WifiNobleConfig,
    ) -> Result<Matrix, NobleError> {
        let n = samples.len();
        let num_floors = layout.heads()[1].width;
        let mut y = Matrix::zeros(n, layout.total_width());
        // Building / floor one-hots.
        let b_range = layout.range(0);
        let f_range = layout.range(1);
        for (i, s) in samples.iter().enumerate() {
            y[(i, b_range.start + s.building)] = 1.0;
            y[(i, f_range.start + s.floor.min(num_floors - 1))] = 1.0;
        }
        // Fine multi-hot (optionally adjacency-expanded).
        let fine_labels: Vec<usize> = samples
            .iter()
            .map(|s| fine.quantize_nearest(s.position))
            .collect();
        let mut encoder = LabelEncoder::new(fine.num_classes());
        if let Some(w) = cfg.adjacency_weight {
            encoder = encoder.with_adjacency(w);
        }
        let fine_targets = encoder.encode(&fine_labels, Some(fine))?;
        let fine_range = layout.range(2);
        for i in 0..n {
            for (j, col) in fine_range.clone().enumerate() {
                y[(i, col)] = fine_targets[(i, j)];
            }
        }
        // Coarse one-hot.
        if let Some(c) = coarse {
            let range = layout.range(3);
            for (i, s) in samples.iter().enumerate() {
                let label = c.quantize_nearest(s.position);
                y[(i, range.start + label)] = 1.0;
            }
        }
        let _ = campaign;
        Ok(y)
    }

    /// The fine quantizer (exposed for analysis and ablations).
    pub fn fine_quantizer(&self) -> &GridQuantizer {
        &self.fine
    }

    /// The coarse quantizer, when multi-resolution was enabled.
    pub fn coarse_quantizer(&self) -> Option<&GridQuantizer> {
        self.coarse.as_ref()
    }

    /// Number of trainable parameters (used by the energy model).
    pub fn parameter_count(&mut self) -> usize {
        self.mlp.parameter_count()
    }

    /// Shapes of the dense layers (used by the energy model's MAC counter).
    pub fn dense_shapes(&self) -> Vec<(usize, usize)> {
        self.mlp.dense_shapes()
    }

    /// Predicts positions and labels for a feature matrix (rows =
    /// normalized fingerprints).
    ///
    /// # Errors
    ///
    /// Propagates network and decode failures.
    pub fn predict(&mut self, features: &Matrix) -> Result<Vec<WifiPrediction>, NobleError> {
        let logits = self.mlp.predict(features)?;
        let buildings = self.layout.predict_classes(&logits, self.head_building)?;
        let floors = self.layout.predict_classes(&logits, self.head_floor)?;
        let fine_classes = self.layout.predict_classes(&logits, self.head_fine)?;
        let mut out = Vec::with_capacity(features.rows());
        for i in 0..features.rows() {
            let position = self.fine.decode(fine_classes[i])?;
            out.push(WifiPrediction {
                position,
                building: buildings[i],
                floor: floors[i],
                fine_class: fine_classes[i],
            });
        }
        Ok(out)
    }

    /// Localizes a single fingerprint (serving-style per-fix path).
    ///
    /// For throughput-sensitive callers, collect fingerprints and use
    /// [`WifiNoble::localize_batch`]: one stacked forward pass reuses the
    /// weight matrices across the batch and engages the blocked
    /// (and, above a size threshold, multi-threaded) matmul kernels.
    ///
    /// # Errors
    ///
    /// Propagates network and decode failures; the fingerprint length must
    /// equal the trained WAP count.
    pub fn localize_one(&mut self, fingerprint: &[f64]) -> Result<WifiPrediction, NobleError> {
        let features = Matrix::from_vec(1, fingerprint.len(), fingerprint.to_vec())
            .map_err(|e| NobleError::InvalidData(e.to_string()))?;
        let mut preds = self.predict(&features)?;
        Ok(preds.pop().expect("one row in, one prediction out"))
    }

    /// Localizes a batch of fingerprints with a single stacked forward
    /// pass. Prediction `i` corresponds to `fingerprints[i]` and matches
    /// [`WifiNoble::localize_one`] on that row (same decode, same argmax;
    /// logits agree to floating-point reassociation).
    ///
    /// # Errors
    ///
    /// [`NobleError::InvalidData`] on ragged input; propagates network and
    /// decode failures.
    pub fn localize_batch(
        &mut self,
        fingerprints: &[Vec<f64>],
    ) -> Result<Vec<WifiPrediction>, NobleError> {
        if fingerprints.is_empty() {
            return Ok(Vec::new());
        }
        let features =
            Matrix::from_rows(fingerprints).map_err(|e| NobleError::InvalidData(e.to_string()))?;
        self.predict(&features)
    }

    /// Embeds fingerprints with the penultimate layer (the learned
    /// manifold embedding of §III-C).
    ///
    /// # Errors
    ///
    /// Propagates network failures.
    pub fn embed(&mut self, features: &Matrix) -> Result<Matrix, NobleError> {
        Ok(self.mlp.embed(features)?)
    }

    /// Probability-weighted decode over the `k` most likely neighborhood
    /// classes: `sum p_c * centroid_c / sum p_c`.
    ///
    /// An extension beyond the paper's arg-max decode: when the classifier
    /// hesitates between adjacent cells, the expectation interpolates
    /// between their centroids instead of committing to one. Returns
    /// `(position, confidence)` pairs where confidence is the probability
    /// mass of the top class.
    ///
    /// # Errors
    ///
    /// Propagates network and decode failures;
    /// [`NobleError::InvalidConfig`] when `k` is zero.
    pub fn predict_expected(
        &mut self,
        features: &Matrix,
        k: usize,
    ) -> Result<Vec<(Point, f64)>, NobleError> {
        if k == 0 {
            return Err(NobleError::InvalidConfig(
                "top-k decode needs k >= 1".into(),
            ));
        }
        let logits = self.mlp.predict(features)?;
        let probs = self.layout.predict_probabilities(&logits, self.head_fine)?;
        let mut out = Vec::with_capacity(features.rows());
        for i in 0..features.rows() {
            let row = probs.row(i);
            // Indices of the k largest probabilities.
            let mut order: Vec<usize> = (0..row.len()).collect();
            order.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).expect("finite probabilities"));
            order.truncate(k);
            let mut mass = 0.0;
            let mut x = 0.0;
            let mut y = 0.0;
            for &c in &order {
                let p = row[c];
                let centroid = self.fine.decode(c)?;
                mass += p;
                x += p * centroid.x;
                y += p * centroid.y;
            }
            let position = if mass > 1e-300 {
                Point::new(x / mass, y / mass)
            } else {
                self.fine.decode(order[0])?
            };
            out.push((position, row[order[0]]));
        }
        Ok(out)
    }

    /// Evaluates on a labeled sample set, producing the Table I metrics.
    ///
    /// # Errors
    ///
    /// [`NobleError::InvalidData`] for an empty sample set; propagates
    /// prediction failures.
    pub fn evaluate(
        &mut self,
        campaign: &WifiCampaign,
        samples: &[WifiSample],
    ) -> Result<WifiEvalReport, NobleError> {
        if samples.is_empty() {
            return Err(NobleError::InvalidData("no samples to evaluate".into()));
        }
        let features = campaign.features(samples);
        let preds = self.predict(&features)?;
        let predicted_positions: Vec<Point> = preds.iter().map(|p| p.position).collect();
        let true_positions: Vec<Point> = samples.iter().map(|s| s.position).collect();

        let pred_b: Vec<usize> = preds.iter().map(|p| p.building).collect();
        let true_b: Vec<usize> = samples.iter().map(|s| s.building).collect();
        let pred_f: Vec<usize> = preds.iter().map(|p| p.floor).collect();
        let true_f: Vec<usize> = samples.iter().map(|s| s.floor).collect();
        let pred_c: Vec<usize> = preds.iter().map(|p| p.fine_class).collect();
        let true_c: Vec<usize> = samples
            .iter()
            .map(|s| self.fine.quantize_nearest(s.position))
            .collect();

        Ok(WifiEvalReport {
            building_accuracy: accuracy(&pred_b, &true_b),
            floor_accuracy: accuracy(&pred_f, &true_f),
            class_accuracy: accuracy(&pred_c, &true_c),
            position_error: position_error_summary(&predicted_positions, &true_positions)?,
            structure: StructureReport::compute(&predicted_positions, &campaign.map)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noble_datasets::{uji_campaign, UjiConfig};

    fn quick_campaign() -> WifiCampaign {
        let mut cfg = UjiConfig::small();
        cfg.seed = 42;
        uji_campaign(&cfg).unwrap()
    }

    #[test]
    fn trains_and_beats_chance() {
        let campaign = quick_campaign();
        let mut model = WifiNoble::train(&campaign, &WifiNobleConfig::small()).unwrap();
        let report = model.evaluate(&campaign, &campaign.test).unwrap();
        // 3 buildings: chance = 1/3. The model must be far above that.
        assert!(
            report.building_accuracy > 0.8,
            "building accuracy {}",
            report.building_accuracy
        );
        assert!(
            report.position_error.mean < 60.0,
            "mean {}",
            report.position_error.mean
        );
        // Decoded positions are training centroids, hence on the map.
        assert!(report.structure.on_map_fraction > 0.95);
    }

    #[test]
    fn predictions_decode_to_occupied_cells() {
        let campaign = quick_campaign();
        let mut model = WifiNoble::train(&campaign, &WifiNobleConfig::small()).unwrap();
        let features = campaign.features(&campaign.test[..5.min(campaign.test.len())]);
        let preds = model.predict(&features).unwrap();
        for p in &preds {
            assert!(p.fine_class < model.fine_quantizer().num_classes());
            assert!(p.building < campaign.map.building_count());
        }
    }

    #[test]
    fn localize_batch_matches_per_sample_path() {
        let campaign = quick_campaign();
        let mut model = WifiNoble::train(&campaign, &WifiNobleConfig::small()).unwrap();
        let features = campaign.features(&campaign.test[..12.min(campaign.test.len())]);
        let rows: Vec<Vec<f64>> = (0..features.rows())
            .map(|i| features.row(i).to_vec())
            .collect();

        let batched = model.localize_batch(&rows).unwrap();
        assert_eq!(batched.len(), rows.len());
        for (row, b) in rows.iter().zip(&batched) {
            let single = model.localize_one(row).unwrap();
            assert_eq!(single.fine_class, b.fine_class);
            assert_eq!(single.building, b.building);
            assert_eq!(single.floor, b.floor);
            assert!(single.position.distance(b.position) < 1e-9);
        }
        // And both agree with the matrix-level predict path.
        let matrix_preds = model.predict(&features).unwrap();
        for (m, b) in matrix_preds.iter().zip(&batched) {
            assert_eq!(m, b);
        }
        assert!(model.localize_batch(&[]).unwrap().is_empty());
        assert!(model.localize_batch(&[vec![0.0], vec![0.0, 1.0]]).is_err());
    }

    #[test]
    fn rejects_empty_campaign_and_bad_config() {
        let campaign = quick_campaign();
        let mut empty = campaign.clone();
        empty.train.clear();
        assert!(WifiNoble::train(&empty, &WifiNobleConfig::small()).is_err());

        let mut bad = WifiNobleConfig::small();
        bad.coarse_l = Some(bad.tau); // not strictly coarser
        assert!(WifiNoble::train(&campaign, &bad).is_err());
    }

    #[test]
    fn single_resolution_and_no_adjacency_also_train() {
        let campaign = quick_campaign();
        let mut cfg = WifiNobleConfig::small();
        cfg.coarse_l = None;
        cfg.adjacency_weight = None;
        cfg.epochs = 8;
        let mut model = WifiNoble::train(&campaign, &cfg).unwrap();
        assert!(model.coarse_quantizer().is_none());
        let report = model.evaluate(&campaign, &campaign.test).unwrap();
        assert!(report.position_error.mean.is_finite());
    }

    #[test]
    fn embedding_has_hidden_width() {
        let campaign = quick_campaign();
        let cfg = WifiNobleConfig::small();
        let mut model = WifiNoble::train(&campaign, &cfg).unwrap();
        let f = campaign.features(&campaign.test[..3.min(campaign.test.len())]);
        let e = model.embed(&f).unwrap();
        assert_eq!(e.cols(), cfg.hidden_dim);
    }

    #[test]
    fn evaluate_rejects_empty() {
        let campaign = quick_campaign();
        let mut model = WifiNoble::train(&campaign, &WifiNobleConfig::small()).unwrap();
        assert!(model.evaluate(&campaign, &[]).is_err());
    }

    #[test]
    fn expected_decode_stays_near_argmax_decode() {
        let campaign = quick_campaign();
        let mut model = WifiNoble::train(&campaign, &WifiNobleConfig::small()).unwrap();
        let features = campaign.features(&campaign.test[..8.min(campaign.test.len())]);
        let argmax_preds = model.predict(&features).unwrap();
        let expected = model.predict_expected(&features, 3).unwrap();
        assert_eq!(expected.len(), argmax_preds.len());

        // The expectation is a convex combination of fine-cell centroids, so
        // it must stay inside their bounding box, and its distance from the
        // arg-max centroid is bounded by the probability mass the model puts
        // on the *other* top-k cells times the largest centroid spread.
        let centroids: Vec<Point> = (0..model.fine_quantizer().num_classes())
            .map(|c| model.fine_quantizer().decode(c).unwrap())
            .collect();
        let min_x = centroids.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
        let max_x = centroids
            .iter()
            .map(|p| p.x)
            .fold(f64::NEG_INFINITY, f64::max);
        let min_y = centroids.iter().map(|p| p.y).fold(f64::INFINITY, f64::min);
        let max_y = centroids
            .iter()
            .map(|p| p.y)
            .fold(f64::NEG_INFINITY, f64::max);
        let spread = centroids
            .iter()
            .flat_map(|a| centroids.iter().map(move |b| a.distance(*b)))
            .fold(0.0f64, f64::max);
        for ((pos, confidence), amax) in expected.iter().zip(&argmax_preds) {
            assert!((0.0..=1.0).contains(confidence));
            assert!(
                (min_x - 1e-9..=max_x + 1e-9).contains(&pos.x)
                    && (min_y - 1e-9..=max_y + 1e-9).contains(&pos.y),
                "expected decode {pos} escapes the centroid bounding box"
            );
            assert!(
                pos.distance(amax.position) <= (1.0 - confidence) * spread + 1e-9,
                "expected decode {pos} vs argmax {} exceeds mass bound",
                amax.position
            );
        }
        assert!(model.predict_expected(&features, 0).is_err());
    }

    #[test]
    fn expected_decode_k1_matches_argmax() {
        let campaign = quick_campaign();
        let mut model = WifiNoble::train(&campaign, &WifiNobleConfig::small()).unwrap();
        let features = campaign.features(&campaign.test[..5.min(campaign.test.len())]);
        let argmax_preds = model.predict(&features).unwrap();
        let top1 = model.predict_expected(&features, 1).unwrap();
        for ((pos, _), amax) in top1.iter().zip(&argmax_preds) {
            assert!(pos.distance(amax.position) < 1e-9);
        }
    }
}
