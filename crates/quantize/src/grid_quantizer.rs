use crate::QuantizeError;
use noble_geo::{Grid, GridCell, Point};
use std::collections::HashMap;

/// Compact identifier of a neighborhood class (0-based, dense).
pub type ClassId = usize;

/// How a class id is decoded back to coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecodePolicy {
    /// Geometric center of the grid cell.
    CellCenter,
    /// Mean of the training samples that fell in the cell (the paper's
    /// "central coordinates" — tighter than the cell center, and the reason
    /// NObLe's *median* error can be far below `τ`).
    #[default]
    SampleMean,
}

/// A single-resolution space quantizer (paper §III-B).
///
/// Fitting builds a [`Grid`] of side `tau` over the samples' bounding box,
/// assigns a dense [`ClassId`] to every *occupied* cell, and records decode
/// coordinates per class. Empty cells are discarded exactly as the paper
/// prescribes, which is what removes courtyards and other inaccessible
/// space from the output vocabulary.
///
/// # Example
///
/// ```
/// use noble_geo::Point;
/// use noble_quantize::{DecodePolicy, GridQuantizer};
///
/// // Two occupied 1 m cells; the gap in between stays out of the vocabulary.
/// let samples = vec![Point::new(0.2, 0.2), Point::new(0.4, 0.6), Point::new(5.5, 0.5)];
/// let q = GridQuantizer::fit(&samples, 1.0, DecodePolicy::SampleMean).unwrap();
/// assert_eq!(q.num_classes(), 2);
///
/// // Quantize → decode returns the mean of the cell's training samples.
/// let class = q.quantize(Point::new(0.3, 0.4)).unwrap();
/// let decoded = q.decode(class).unwrap();
/// assert!((decoded.x - 0.3).abs() < 1e-9 && (decoded.y - 0.4).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct GridQuantizer {
    grid: Grid,
    policy: DecodePolicy,
    /// Flat cell index -> dense class id.
    cell_to_class: HashMap<usize, ClassId>,
    /// Dense class id -> flat cell index.
    class_to_cell: Vec<usize>,
    /// Dense class id -> decode coordinates.
    centroids: Vec<Point>,
    /// Dense class id -> training-sample count.
    counts: Vec<usize>,
}

impl GridQuantizer {
    /// Fits a quantizer of cell side `tau` to training coordinates.
    ///
    /// # Errors
    ///
    /// - [`QuantizeError::NoSamples`] when `samples` is empty.
    /// - [`QuantizeError::Geo`] when `tau` is not a positive finite number.
    pub fn fit(samples: &[Point], tau: f64, policy: DecodePolicy) -> Result<Self, QuantizeError> {
        if samples.is_empty() {
            return Err(QuantizeError::NoSamples);
        }
        let mut min = Point::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in samples {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
        let grid = Grid::cover(min, max, tau)?;

        let mut cell_to_class: HashMap<usize, ClassId> = HashMap::new();
        let mut class_to_cell: Vec<usize> = Vec::new();
        let mut sums: Vec<Point> = Vec::new();
        let mut counts: Vec<usize> = Vec::new();
        for p in samples {
            let cell = grid
                .cell_of(*p)
                .expect("grid covers the samples' bounding box");
            let flat = grid.flat_index(cell);
            let class = *cell_to_class.entry(flat).or_insert_with(|| {
                class_to_cell.push(flat);
                sums.push(Point::ORIGIN);
                counts.push(0);
                class_to_cell.len() - 1
            });
            sums[class] = sums[class] + *p;
            counts[class] += 1;
        }
        let centroids: Vec<Point> = match policy {
            DecodePolicy::CellCenter => class_to_cell
                .iter()
                .map(|&flat| grid.cell_center(grid.cell_from_flat(flat)))
                .collect(),
            DecodePolicy::SampleMean => sums
                .iter()
                .zip(&counts)
                .map(|(s, &c)| *s * (1.0 / c as f64))
                .collect(),
        };
        Ok(GridQuantizer {
            grid,
            policy,
            cell_to_class,
            class_to_cell,
            centroids,
            counts,
        })
    }

    /// Reassembles a fitted quantizer from its raw parts (the
    /// deserialization path): the grid, decode policy, per-class cell
    /// indices ([`GridQuantizer::class_cells`]), decode centroids and
    /// training-sample counts. The cell→class map is rebuilt, so a
    /// round-trip through the accessors reproduces the original quantizer
    /// exactly.
    ///
    /// # Errors
    ///
    /// Returns [`QuantizeError::BadParts`] when the three per-class vectors
    /// disagree in length, a cell index is out of grid range, a cell is
    /// claimed by two classes, or any count is zero.
    pub fn from_parts(
        grid: Grid,
        policy: DecodePolicy,
        class_to_cell: Vec<usize>,
        centroids: Vec<Point>,
        counts: Vec<usize>,
    ) -> Result<Self, QuantizeError> {
        if class_to_cell.len() != centroids.len() || class_to_cell.len() != counts.len() {
            return Err(QuantizeError::BadParts(format!(
                "class vectors disagree: {} cells, {} centroids, {} counts",
                class_to_cell.len(),
                centroids.len(),
                counts.len()
            )));
        }
        if class_to_cell.is_empty() {
            return Err(QuantizeError::NoSamples);
        }
        let mut cell_to_class = HashMap::with_capacity(class_to_cell.len());
        for (class, &flat) in class_to_cell.iter().enumerate() {
            if flat >= grid.cell_count() {
                return Err(QuantizeError::BadParts(format!(
                    "class {class} names cell {flat}, grid has {} cells",
                    grid.cell_count()
                )));
            }
            if cell_to_class.insert(flat, class).is_some() {
                return Err(QuantizeError::BadParts(format!(
                    "cell {flat} is claimed by two classes"
                )));
            }
        }
        if let Some(class) = counts.iter().position(|&c| c == 0) {
            return Err(QuantizeError::BadParts(format!(
                "class {class} has zero training samples"
            )));
        }
        Ok(GridQuantizer {
            grid,
            policy,
            cell_to_class,
            class_to_cell,
            centroids,
            counts,
        })
    }

    /// Flat grid-cell index of every class, in class order (the inverse of
    /// the cell→class map; serialization reads this, [`GridQuantizer::from_parts`]
    /// consumes it).
    pub fn class_cells(&self) -> &[usize] {
        &self.class_to_cell
    }

    /// Decode centroid of every class, in class order.
    pub fn centroids(&self) -> &[Point] {
        &self.centroids
    }

    /// Training-sample count of every class, in class order.
    pub fn class_counts(&self) -> &[usize] {
        &self.counts
    }

    /// Cell side length `τ`.
    pub fn tau(&self) -> f64 {
        self.grid.cell_size()
    }

    /// Decode policy in use.
    pub fn policy(&self) -> DecodePolicy {
        self.policy
    }

    /// Number of registered (occupied) classes.
    pub fn num_classes(&self) -> usize {
        self.class_to_cell.len()
    }

    /// The underlying grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Training-sample count of a class.
    ///
    /// # Errors
    ///
    /// Returns [`QuantizeError::UnknownClass`] for an unregistered id.
    pub fn class_count(&self, class: ClassId) -> Result<usize, QuantizeError> {
        self.counts
            .get(class)
            .copied()
            .ok_or(QuantizeError::UnknownClass {
                class,
                num_classes: self.num_classes(),
            })
    }

    /// Maps a point to its neighborhood class, if the point falls in an
    /// occupied cell.
    pub fn quantize(&self, p: Point) -> Option<ClassId> {
        let cell = self.grid.cell_of(p)?;
        self.cell_to_class.get(&self.grid.flat_index(cell)).copied()
    }

    /// Maps a point to the *nearest* registered class (by decode
    /// coordinates). Unlike [`GridQuantizer::quantize`] this never fails:
    /// test samples that fall in cells unseen during training are assigned
    /// to the closest occupied neighborhood, which is how labels are
    /// produced for evaluation.
    pub fn quantize_nearest(&self, p: Point) -> ClassId {
        if let Some(c) = self.quantize(p) {
            return c;
        }
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (c, centroid) in self.centroids.iter().enumerate() {
            let d = centroid.squared_distance(p);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    }

    /// Decodes a class id to coordinates per the decode policy.
    ///
    /// # Errors
    ///
    /// Returns [`QuantizeError::UnknownClass`] for an unregistered id.
    pub fn decode(&self, class: ClassId) -> Result<Point, QuantizeError> {
        self.centroids
            .get(class)
            .copied()
            .ok_or(QuantizeError::UnknownClass {
                class,
                num_classes: self.num_classes(),
            })
    }

    /// The grid cell of a registered class.
    ///
    /// # Errors
    ///
    /// Returns [`QuantizeError::UnknownClass`] for an unregistered id.
    pub fn class_cell(&self, class: ClassId) -> Result<GridCell, QuantizeError> {
        self.class_to_cell
            .get(class)
            .map(|&flat| self.grid.cell_from_flat(flat))
            .ok_or(QuantizeError::UnknownClass {
                class,
                num_classes: self.num_classes(),
            })
    }

    /// Registered classes occupying cells adjacent (8-connected) to the
    /// cell of `class`, excluding `class` itself.
    ///
    /// # Errors
    ///
    /// Returns [`QuantizeError::UnknownClass`] for an unregistered id.
    pub fn adjacent_classes(&self, class: ClassId) -> Result<Vec<ClassId>, QuantizeError> {
        let cell = self.class_cell(class)?;
        Ok(self
            .grid
            .neighbors(cell)
            .into_iter()
            .filter_map(|n| self.cell_to_class.get(&self.grid.flat_index(n)).copied())
            .collect())
    }

    /// Quantization error of decoding: distance between `p` and the decode
    /// coordinates of its nearest class. This bounds the error NObLe makes
    /// when classification is perfect.
    pub fn decode_error(&self, p: Point) -> f64 {
        let class = self.quantize_nearest(p);
        self.centroids[class].distance(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_samples() -> Vec<Point> {
        vec![
            Point::new(0.1, 0.1),
            Point::new(0.3, 0.2),
            Point::new(0.2, 0.3),
            Point::new(5.1, 5.1),
            Point::new(5.4, 5.2),
            Point::new(9.9, 0.1),
        ]
    }

    #[test]
    fn fit_discards_empty_cells() {
        let q = GridQuantizer::fit(&cluster_samples(), 1.0, DecodePolicy::CellCenter).unwrap();
        // 10x6 grid has 60 cells but only 3 are occupied.
        assert_eq!(q.num_classes(), 3);
        assert!(q.grid().cell_count() >= 50);
    }

    #[test]
    fn fit_rejects_empty_and_bad_tau() {
        assert!(matches!(
            GridQuantizer::fit(&[], 1.0, DecodePolicy::CellCenter),
            Err(QuantizeError::NoSamples)
        ));
        assert!(GridQuantizer::fit(&[Point::ORIGIN], 0.0, DecodePolicy::CellCenter).is_err());
    }

    #[test]
    fn quantize_round_trip_within_tau() {
        let samples = cluster_samples();
        let q = GridQuantizer::fit(&samples, 1.0, DecodePolicy::CellCenter).unwrap();
        for p in &samples {
            let c = q
                .quantize(*p)
                .expect("training samples are in occupied cells");
            let decoded = q.decode(c).unwrap();
            // Decode is within half a cell diagonal.
            assert!(decoded.distance(*p) <= (2.0f64).sqrt() / 2.0 + 1e-9);
        }
    }

    #[test]
    fn sample_mean_policy_returns_exact_mean() {
        let q = GridQuantizer::fit(&cluster_samples(), 1.0, DecodePolicy::SampleMean).unwrap();
        let c = q.quantize(Point::new(0.2, 0.2)).unwrap();
        let decoded = q.decode(c).unwrap();
        assert!((decoded.x - 0.2).abs() < 1e-12);
        assert!((decoded.y - 0.2).abs() < 1e-12);
        assert_eq!(q.class_count(c).unwrap(), 3);
    }

    #[test]
    fn quantize_unoccupied_cell_is_none() {
        let q = GridQuantizer::fit(&cluster_samples(), 1.0, DecodePolicy::CellCenter).unwrap();
        assert_eq!(q.quantize(Point::new(3.5, 3.5)), None);
        assert_eq!(q.quantize(Point::new(-10.0, 0.0)), None);
    }

    #[test]
    fn quantize_nearest_always_resolves() {
        let q = GridQuantizer::fit(&cluster_samples(), 1.0, DecodePolicy::SampleMean).unwrap();
        // Near the (5,5) cluster but in an empty cell.
        let c = q.quantize_nearest(Point::new(4.6, 4.6));
        let decoded = q.decode(c).unwrap();
        assert!(decoded.distance(Point::new(5.25, 5.15)) < 1e-9);
        // Far outside the grid also resolves.
        let c2 = q.quantize_nearest(Point::new(100.0, 100.0));
        assert!(c2 < q.num_classes());
    }

    #[test]
    fn decode_unknown_class_errors() {
        let q = GridQuantizer::fit(&cluster_samples(), 1.0, DecodePolicy::CellCenter).unwrap();
        assert!(matches!(
            q.decode(99),
            Err(QuantizeError::UnknownClass { class: 99, .. })
        ));
        assert!(q.class_count(99).is_err());
        assert!(q.class_cell(99).is_err());
        assert!(q.adjacent_classes(99).is_err());
    }

    #[test]
    fn adjacency_links_occupied_neighbors() {
        // Two samples in touching cells, one far away.
        let samples = vec![
            Point::new(0.5, 0.5),
            Point::new(1.5, 0.5),
            Point::new(8.5, 8.5),
        ];
        let q = GridQuantizer::fit(&samples, 1.0, DecodePolicy::CellCenter).unwrap();
        let c0 = q.quantize(samples[0]).unwrap();
        let c1 = q.quantize(samples[1]).unwrap();
        let c2 = q.quantize(samples[2]).unwrap();
        assert_eq!(q.adjacent_classes(c0).unwrap(), vec![c1]);
        assert_eq!(q.adjacent_classes(c1).unwrap(), vec![c0]);
        assert!(q.adjacent_classes(c2).unwrap().is_empty());
    }

    #[test]
    fn finer_tau_means_more_classes_and_less_decode_error() {
        let samples: Vec<Point> = (0..100)
            .map(|i| Point::new((i % 10) as f64, (i / 10) as f64))
            .collect();
        let coarse = GridQuantizer::fit(&samples, 4.0, DecodePolicy::CellCenter).unwrap();
        let fine = GridQuantizer::fit(&samples, 1.0, DecodePolicy::CellCenter).unwrap();
        assert!(fine.num_classes() > coarse.num_classes());
        let probe = Point::new(2.3, 2.7);
        assert!(fine.decode_error(probe) <= coarse.decode_error(probe));
    }

    #[test]
    fn from_parts_round_trip_is_exact() {
        let samples = cluster_samples();
        let q = GridQuantizer::fit(&samples, 1.0, DecodePolicy::SampleMean).unwrap();
        let rebuilt = GridQuantizer::from_parts(
            q.grid().clone(),
            q.policy(),
            q.class_cells().to_vec(),
            q.centroids().to_vec(),
            q.class_counts().to_vec(),
        )
        .unwrap();
        assert_eq!(rebuilt.num_classes(), q.num_classes());
        for p in &samples {
            assert_eq!(rebuilt.quantize(*p), q.quantize(*p));
            let c = rebuilt.quantize_nearest(*p);
            assert_eq!(c, q.quantize_nearest(*p));
            assert_eq!(rebuilt.decode(c).unwrap(), q.decode(c).unwrap());
            assert_eq!(rebuilt.class_count(c).unwrap(), q.class_count(c).unwrap());
        }
        // Off-grid probes hit the same nearest class too.
        let probe = Point::new(42.0, -3.0);
        assert_eq!(rebuilt.quantize_nearest(probe), q.quantize_nearest(probe));
    }

    #[test]
    fn from_parts_rejects_inconsistencies() {
        let q = GridQuantizer::fit(&cluster_samples(), 1.0, DecodePolicy::SampleMean).unwrap();
        let grid = q.grid().clone();
        let cells = q.class_cells().to_vec();
        let cents = q.centroids().to_vec();
        let counts = q.class_counts().to_vec();
        // Length mismatch.
        assert!(matches!(
            GridQuantizer::from_parts(
                grid.clone(),
                q.policy(),
                cells[..cells.len() - 1].to_vec(),
                cents.clone(),
                counts.clone()
            ),
            Err(QuantizeError::BadParts(_))
        ));
        // Out-of-range cell.
        let mut bad_cells = cells.clone();
        bad_cells[0] = grid.cell_count() + 5;
        assert!(GridQuantizer::from_parts(
            grid.clone(),
            q.policy(),
            bad_cells,
            cents.clone(),
            counts.clone()
        )
        .is_err());
        // Duplicate cell.
        let mut dup_cells = cells.clone();
        dup_cells[1] = dup_cells[0];
        assert!(GridQuantizer::from_parts(
            grid.clone(),
            q.policy(),
            dup_cells,
            cents.clone(),
            counts
        )
        .is_err());
        // Zero count.
        let zero_counts = vec![0; cells.len()];
        assert!(GridQuantizer::from_parts(grid, q.policy(), cells, cents, zero_counts).is_err());
    }

    #[test]
    fn tau_accessor() {
        let q = GridQuantizer::fit(&[Point::ORIGIN], 0.25, DecodePolicy::CellCenter).unwrap();
        assert_eq!(q.tau(), 0.25);
        assert_eq!(q.policy(), DecodePolicy::CellCenter);
    }
}
