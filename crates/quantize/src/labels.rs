use crate::{ClassId, GridQuantizer, QuantizeError};
use noble_linalg::Matrix;

/// Builds multi-hot classification targets from neighborhood classes.
///
/// The paper addresses fine-grid data sparsity by optionally "assign\[ing\]
/// data samples with multiple classes, the ones that are adjacent to the
/// real class" — [`LabelEncoder::with_adjacency`] turns that on.
#[derive(Debug, Clone)]
pub struct LabelEncoder {
    num_classes: usize,
    include_adjacent: bool,
    /// Weight given to adjacent positives (the true class always gets 1.0).
    adjacent_weight: f64,
}

impl LabelEncoder {
    /// An encoder producing plain one-hot rows over `num_classes`.
    pub fn new(num_classes: usize) -> Self {
        LabelEncoder {
            num_classes,
            include_adjacent: false,
            adjacent_weight: 1.0,
        }
    }

    /// Enables adjacency expansion with the given positive weight for
    /// neighbors (`1.0` reproduces the paper's hard multi-label).
    pub fn with_adjacency(mut self, weight: f64) -> Self {
        self.include_adjacent = true;
        self.adjacent_weight = weight;
        self
    }

    /// Number of classes (target matrix width).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Whether adjacency expansion is on.
    pub fn adjacency_enabled(&self) -> bool {
        self.include_adjacent
    }

    /// Encodes class labels to a `(n, num_classes)` target matrix. When
    /// adjacency is enabled, `quantizer` supplies each class's occupied
    /// neighbors.
    ///
    /// # Errors
    ///
    /// Returns [`QuantizeError::UnknownClass`] when a label is out of range
    /// or when the quantizer does not recognize a class.
    pub fn encode(
        &self,
        labels: &[ClassId],
        quantizer: Option<&GridQuantizer>,
    ) -> Result<Matrix, QuantizeError> {
        let mut m = Matrix::zeros(labels.len(), self.num_classes);
        for (i, &c) in labels.iter().enumerate() {
            if c >= self.num_classes {
                return Err(QuantizeError::UnknownClass {
                    class: c,
                    num_classes: self.num_classes,
                });
            }
            m[(i, c)] = 1.0;
            if self.include_adjacent {
                if let Some(q) = quantizer {
                    for adj in q.adjacent_classes(c)? {
                        if adj < self.num_classes && m[(i, adj)] == 0.0 {
                            m[(i, adj)] = self.adjacent_weight;
                        }
                    }
                }
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DecodePolicy;
    use noble_geo::Point;

    #[test]
    fn one_hot_rows() {
        let enc = LabelEncoder::new(4);
        let m = enc.encode(&[2, 0], None).unwrap();
        assert_eq!(m.row(0), &[0.0, 0.0, 1.0, 0.0]);
        assert_eq!(m.row(1), &[1.0, 0.0, 0.0, 0.0]);
        assert!(!enc.adjacency_enabled());
    }

    #[test]
    fn rejects_out_of_range_label() {
        let enc = LabelEncoder::new(2);
        assert!(matches!(
            enc.encode(&[2], None),
            Err(QuantizeError::UnknownClass { class: 2, .. })
        ));
    }

    #[test]
    fn adjacency_adds_neighbor_positives() {
        // Samples across a row of touching cells; the extra point keeps the
        // grid's max edge away from the third cell so boundary clamping
        // cannot merge cells.
        let samples = vec![
            Point::new(0.5, 0.5),
            Point::new(1.5, 0.5),
            Point::new(2.5, 0.5),
            Point::new(3.4, 0.5),
        ];
        let q = GridQuantizer::fit(&samples, 1.0, DecodePolicy::CellCenter).unwrap();
        let middle = q.quantize(samples[1]).unwrap();
        let enc = LabelEncoder::new(q.num_classes()).with_adjacency(0.5);
        let m = enc.encode(&[middle], Some(&q)).unwrap();
        // True class 1.0; the two flanking classes 0.5.
        let row = m.row(0);
        assert_eq!(row[middle], 1.0);
        let halves = row.iter().filter(|&&v| (v - 0.5).abs() < 1e-12).count();
        assert_eq!(halves, 2);
    }

    #[test]
    fn adjacency_never_downgrades_true_class() {
        let samples = vec![Point::new(0.5, 0.5), Point::new(1.5, 0.5)];
        let q = GridQuantizer::fit(&samples, 1.0, DecodePolicy::CellCenter).unwrap();
        let c0 = q.quantize(samples[0]).unwrap();
        let enc = LabelEncoder::new(q.num_classes()).with_adjacency(0.3);
        let m = enc.encode(&[c0], Some(&q)).unwrap();
        assert_eq!(m.row(0)[c0], 1.0);
    }

    #[test]
    fn adjacency_without_quantizer_degrades_to_one_hot() {
        let enc = LabelEncoder::new(3).with_adjacency(1.0);
        let m = enc.encode(&[1], None).unwrap();
        assert_eq!(m.row(0), &[0.0, 1.0, 0.0]);
    }
}
