use noble_geo::GeoError;
use std::error::Error;
use std::fmt;

/// Errors produced by quantization.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantizeError {
    /// No training samples were given.
    NoSamples,
    /// A class id does not exist in the registry.
    UnknownClass {
        /// The offending class id.
        class: usize,
        /// Number of registered classes.
        num_classes: usize,
    },
    /// A point fell outside the fitted grid.
    OutOfBounds {
        /// The x coordinate.
        x: f64,
        /// The y coordinate.
        y: f64,
    },
    /// Invalid resolution parameters (e.g. coarse side not larger than
    /// fine side).
    InvalidResolution(String),
    /// Inconsistent raw parts handed to a deserializing constructor.
    BadParts(String),
    /// An underlying geometry failure.
    Geo(GeoError),
}

impl fmt::Display for QuantizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantizeError::NoSamples => write!(f, "quantizer needs at least one sample"),
            QuantizeError::UnknownClass { class, num_classes } => {
                write!(f, "class {class} not in registry of {num_classes} classes")
            }
            QuantizeError::OutOfBounds { x, y } => {
                write!(f, "point ({x}, {y}) outside the fitted grid")
            }
            QuantizeError::InvalidResolution(msg) => write!(f, "invalid resolution: {msg}"),
            QuantizeError::BadParts(msg) => write!(f, "inconsistent quantizer parts: {msg}"),
            QuantizeError::Geo(e) => write!(f, "geometry failure: {e}"),
        }
    }
}

impl Error for QuantizeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            QuantizeError::Geo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeoError> for QuantizeError {
    fn from(e: GeoError) -> Self {
        QuantizeError::Geo(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(QuantizeError::NoSamples
            .to_string()
            .contains("at least one"));
        assert!(QuantizeError::UnknownClass {
            class: 7,
            num_classes: 3
        }
        .to_string()
        .contains("class 7"));
        assert!(QuantizeError::OutOfBounds { x: 1.0, y: 2.0 }
            .to_string()
            .contains("(1, 2)"));
    }

    #[test]
    fn geo_source_preserved() {
        let e: QuantizeError = GeoError::EmptyMap.into();
        assert!(Error::source(&e).is_some());
    }
}
