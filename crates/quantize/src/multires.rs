use crate::{ClassId, DecodePolicy, GridQuantizer, QuantizeError};
use noble_geo::Point;

/// The paper's multi-resolution formulation (§III-B): each sample carries a
/// fine class `c` (grid side `τ`) *and* a coarse class `r` (grid side
/// `l > τ`), "giving different levels of granularity of the output
/// manifold".
///
/// The fine quantizer decodes predictions; the coarse head regularizes
/// training and mitigates fine-class data sparsity.
#[derive(Debug, Clone)]
pub struct MultiResolutionQuantizer {
    fine: GridQuantizer,
    coarse: GridQuantizer,
}

impl MultiResolutionQuantizer {
    /// Fits fine (`tau`) and coarse (`l`) quantizers to the same samples.
    ///
    /// # Errors
    ///
    /// - [`QuantizeError::InvalidResolution`] unless `l > tau`.
    /// - Propagates [`GridQuantizer::fit`] failures.
    pub fn fit(
        samples: &[Point],
        tau: f64,
        l: f64,
        policy: DecodePolicy,
    ) -> Result<Self, QuantizeError> {
        if l.partial_cmp(&tau) != Some(std::cmp::Ordering::Greater) {
            return Err(QuantizeError::InvalidResolution(format!(
                "coarse side {l} must exceed fine side {tau}"
            )));
        }
        Ok(MultiResolutionQuantizer {
            fine: GridQuantizer::fit(samples, tau, policy)?,
            coarse: GridQuantizer::fit(samples, l, policy)?,
        })
    }

    /// The fine quantizer (side `τ`).
    pub fn fine(&self) -> &GridQuantizer {
        &self.fine
    }

    /// The coarse quantizer (side `l`).
    pub fn coarse(&self) -> &GridQuantizer {
        &self.coarse
    }

    /// `(c, r)` labels of a point: fine and coarse nearest classes.
    pub fn labels(&self, p: Point) -> (ClassId, ClassId) {
        (
            self.fine.quantize_nearest(p),
            self.coarse.quantize_nearest(p),
        )
    }

    /// Decodes a fine class prediction to coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`QuantizeError::UnknownClass`] for an unregistered id.
    pub fn decode_fine(&self, class: ClassId) -> Result<Point, QuantizeError> {
        self.fine.decode(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Point> {
        (0..64)
            .map(|i| Point::new((i % 8) as f64 * 0.5, (i / 8) as f64 * 0.5))
            .collect()
    }

    #[test]
    fn fit_requires_coarser_l() {
        assert!(
            MultiResolutionQuantizer::fit(&samples(), 1.0, 1.0, DecodePolicy::CellCenter).is_err()
        );
        assert!(
            MultiResolutionQuantizer::fit(&samples(), 1.0, 0.5, DecodePolicy::CellCenter).is_err()
        );
        assert!(
            MultiResolutionQuantizer::fit(&samples(), 0.5, 2.0, DecodePolicy::CellCenter).is_ok()
        );
    }

    #[test]
    fn coarse_has_fewer_classes() {
        let q =
            MultiResolutionQuantizer::fit(&samples(), 0.5, 2.0, DecodePolicy::CellCenter).unwrap();
        assert!(q.coarse().num_classes() < q.fine().num_classes());
        assert!(q.fine().num_classes() <= 64);
    }

    #[test]
    fn labels_are_consistent() {
        let q =
            MultiResolutionQuantizer::fit(&samples(), 0.5, 2.0, DecodePolicy::SampleMean).unwrap();
        let p = Point::new(1.3, 2.1);
        let (c, r) = q.labels(p);
        // Decoding the fine class should be closer (or equal) to p than the
        // coarse class decode.
        let fine_err = q.fine().decode(c).unwrap().distance(p);
        let coarse_err = q.coarse().decode(r).unwrap().distance(p);
        assert!(fine_err <= coarse_err + 1e-9);
        assert_eq!(q.decode_fine(c).unwrap(), q.fine().decode(c).unwrap());
    }

    #[test]
    fn coarse_groups_fine_cells() {
        let q =
            MultiResolutionQuantizer::fit(&samples(), 0.5, 2.0, DecodePolicy::CellCenter).unwrap();
        // Points in the same coarse cell but different fine cells.
        let (c1, r1) = q.labels(Point::new(0.2, 0.2));
        let (c2, r2) = q.labels(Point::new(1.2, 1.2));
        assert_ne!(c1, c2);
        assert_eq!(r1, r2);
    }
}
