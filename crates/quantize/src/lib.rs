//! Output-space quantization: the paper's §III-B.
//!
//! NObLe turns coordinate regression into fine-grained classification by
//! dividing the localization space into square grid cells of side `τ`,
//! keeping only cells that contain training samples ("discard all classes
//! without any data points"), and training against the resulting
//! *neighborhood classes*. At inference the predicted class is decoded back
//! to its central coordinates.
//!
//! This crate provides:
//!
//! - [`GridQuantizer`] — a single-resolution quantizer with a compact class
//!   registry and two decode policies ([`DecodePolicy`]),
//! - [`MultiResolutionQuantizer`] — the paper's `(c, r)` formulation: a fine
//!   grid of side `τ` plus a coarse grid of side `l > τ`,
//! - [`LabelEncoder`] — multi-hot target construction, optionally expanding
//!   positives to adjacent occupied cells (the paper's remedy for class
//!   data sparsity).
//!
//! # Example
//!
//! ```
//! use noble_geo::Point;
//! use noble_quantize::{DecodePolicy, GridQuantizer};
//!
//! let samples = vec![Point::new(0.1, 0.1), Point::new(0.2, 0.15), Point::new(5.0, 5.0)];
//! let q = GridQuantizer::fit(&samples, 1.0, DecodePolicy::SampleMean).unwrap();
//! assert_eq!(q.num_classes(), 2);
//! let class = q.quantize(Point::new(0.12, 0.11)).unwrap();
//! let decoded = q.decode(class).unwrap();
//! assert!(decoded.distance(Point::new(0.15, 0.125)) < 1e-9);
//! ```

mod error;
mod grid_quantizer;
mod labels;
mod multires;

pub use error::QuantizeError;
pub use grid_quantizer::{ClassId, DecodePolicy, GridQuantizer};
pub use labels::LabelEncoder;
pub use multires::MultiResolutionQuantizer;
