//! lock-discipline good fixture: scoped guards, declared-order
//! acquisition, an explicit early drop, and a reasoned allow — none may
//! fire.
use std::collections::BTreeMap;
use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub struct Engine {
    pub slots: Mutex<BTreeMap<u64, u64>>,
    pub stats: Mutex<u64>,
    pub tx: Sender<u64>,
}

impl Engine {
    pub fn scoped_send(&self) {
        let len = {
            let slots = match self.slots.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            slots.len() as u64
        };
        let _ = self.tx.send(len);
    }

    pub fn declared_order(&self) -> u64 {
        let slots = match self.slots.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let stats = match self.stats.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        slots.len() as u64 + *stats
    }

    pub fn dropped_before_send(&self) {
        let slots = match self.slots.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let len = slots.len() as u64;
        drop(slots);
        let _ = self.tx.send(len);
    }

    pub fn marker_send(&self) {
        let slots = match self.slots.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        // noble-lint: allow(lock-discipline, "fixture: unbounded channel send never blocks; sending under the lock is the ordering argument")
        let _ = self.tx.send(slots.len() as u64);
    }
}
