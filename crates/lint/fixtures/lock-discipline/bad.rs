//! lock-discipline bad fixture: a channel op under a guard, an inverted
//! acquisition against the declared order, and a re-entrant lock.
use std::collections::BTreeMap;
use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub struct Engine {
    pub slots: Mutex<BTreeMap<u64, u64>>,
    pub stats: Mutex<u64>,
    pub tx: Sender<u64>,
}

impl Engine {
    pub fn send_under_lock(&self) {
        let slots = match self.slots.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let _ = self.tx.send(slots.len() as u64);
    }

    pub fn inverted_order(&self) {
        let stats = match self.stats.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let slots = match self.slots.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let _ = (stats, slots);
    }

    pub fn reentrant(&self) -> u64 {
        let stats = match self.stats.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        let again = match self.stats.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        *stats + *again
    }
}
