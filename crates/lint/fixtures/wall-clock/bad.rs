//! wall-clock bad fixture: wall-clock reads on a result path.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn epoch_millis() -> u128 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}
