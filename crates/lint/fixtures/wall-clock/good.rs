//! wall-clock good fixture: logical time, a reasoned allow, and a
//! test-only clock read — none may fire.

pub fn advance(at: u64) -> u64 {
    at + 1
}

pub fn deadline_poll() -> std::time::Instant {
    // noble-lint: allow(wall-clock, "fixture: batching deadline only; never feeds a result")
    std::time::Instant::now()
}

#[cfg(test)]
mod tests {
    #[test]
    fn clocks_in_tests_are_fine() {
        let _ = std::time::Instant::now();
    }
}
