//! float-determinism good fixture: f64 end to end, ordered reduction,
//! and a gated fast path with a reasoned allow — none may fire.
use std::collections::BTreeMap;

pub fn keep_exact(x: f64) -> f64 {
    x * 2.0
}

pub fn reduce(weights: &BTreeMap<u64, f64>) -> f64 {
    weights.values().sum()
}

pub fn gated_fast_path(x: f64) -> f32 {
    // noble-lint: allow(float-determinism, "fixture: explicit accuracy-gated fast path that documents the bits it trades")
    x as f32
}
