//! float-determinism bad fixture: an f32 truncation and a hash-ordered
//! float reduction in kernel-style code.
use std::collections::HashMap;

pub fn truncate(x: f64) -> f32 {
    x as f32
}

pub fn reduce(weights: &HashMap<u64, f64>) -> f64 {
    weights.values().sum()
}
