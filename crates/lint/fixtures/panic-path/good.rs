//! panic-path good fixture: typed errors, a reasoned allow, and a
//! test-region unwrap — none may fire.

pub fn first(xs: &[u64]) -> Result<u64, String> {
    xs.first().copied().ok_or_else(|| "empty input".to_string())
}

pub fn invariant(x: Option<u32>) -> u32 {
    // noble-lint: allow(panic-path, "fixture: reviewed invariant with a documented reason")
    x.expect("reviewed invariant")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(3).unwrap(), 3);
    }
}
