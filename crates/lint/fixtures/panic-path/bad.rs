//! panic-path bad fixture: four distinct panic routes in library code.

pub fn first(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}

pub fn named(x: Option<u32>) -> u32 {
    x.expect("always set")
}

pub fn boom() {
    panic!("library code must not panic");
}

pub fn later() -> u32 {
    unimplemented!()
}
