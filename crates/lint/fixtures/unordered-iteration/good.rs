//! unordered-iteration good fixture: BTree order, lookup-only hash use,
//! and a sort-before-escape with a reasoned allow — none may fire.
use std::collections::{BTreeMap, HashMap};

pub fn render(ordered: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in ordered.iter() {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}

pub fn lookup(table: &HashMap<u64, u64>, key: u64) -> Option<u64> {
    table.get(&key).copied()
}

pub fn sorted(counts: &HashMap<String, u64>) -> Vec<(String, u64)> {
    // noble-lint: allow(unordered-iteration, "fixture: collected and sorted on the next line before order can escape")
    let mut out: Vec<(String, u64)> = counts.iter().map(|(k, v)| (k.clone(), *v)).collect();
    out.sort();
    out
}
