//! unordered-iteration bad fixture: hash order reaching output.
use std::collections::{HashMap, HashSet};

pub fn render(counts: &HashMap<String, u64>) -> String {
    let mut out = String::new();
    for (k, v) in counts.iter() {
        out.push_str(&format!("{k}={v}\n"));
    }
    out
}

pub fn keys(set: &HashSet<u64>) -> Vec<u64> {
    set.iter().copied().collect()
}

pub fn tally(map: HashMap<u64, u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for (_k, v) in &map {
        out.push(v + 1);
    }
    out
}
