//! A hand-rolled lexer for the subset of Rust surface syntax the lints
//! walk.
//!
//! The container is offline, so there is no `syn`/`proc-macro2` to lean
//! on (the same constraint that produced the vendored `rand`/`proptest`
//! stand-ins). The lints only need a faithful *token stream* — not a
//! syntax tree — so this lexer handles exactly the parts of the grammar
//! that would otherwise produce false positives if scanned textually:
//!
//! - line comments, block comments (nested) and doc comments, kept as
//!   tokens so the suppression scanner can read them while the lints
//!   skip them — a `unwrap()` inside a doctest code block is a comment
//!   here, not a call;
//! - string literals (plain, raw `r#"…"#`, byte), char literals, and
//!   the `'a` lifetime / `'x'` char ambiguity;
//! - numeric literals with underscores, type suffixes and exponents,
//!   without swallowing the `..` of a range expression.
//!
//! Everything else is an identifier or a single-character punct token.
//! Every token carries its line and column (both 1-based) for
//! rustc-style diagnostics.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the lints treat keywords as idents).
    Ident,
    /// Single punctuation character (`.`, `:`, `{`, …).
    Punct,
    /// String literal of any flavor (plain, raw, byte), quotes included.
    Str,
    /// Char literal, quotes included.
    Char,
    /// Numeric literal, suffix included.
    Num,
    /// Lifetime (`'a`), the leading quote stripped.
    Lifetime,
    /// `//`-comment (doc or plain), leading slashes included.
    LineComment,
    /// `/* … */` comment (doc or plain), delimiters included.
    BlockComment,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Raw text (see [`TokenKind`] for what each kind includes).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in chars, not bytes).
    pub col: u32,
}

impl Token {
    /// Whether this token is a comment of either flavor.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lexes `text` into a full token stream, comments included.
///
/// The lexer never fails: malformed input (an unterminated string, a
/// stray control character) degrades to best-effort tokens, which is
/// the right trade for a linter — the compiler owns rejecting the file.
pub fn lex(text: &str) -> Vec<Token> {
    Lexer {
        chars: text.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.out.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line, col),
                '/' if self.peek(1) == Some('*') => self.block_comment(line, col),
                '"' => self.string(line, col, String::new()),
                'r' | 'b' if self.raw_or_byte_string(line, col) => {}
                '\'' => self.char_or_lifetime(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                c if c.is_alphanumeric() || c == '_' => self.ident(line, col),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line, col);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::LineComment, text, line, col);
    }

    fn block_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::BlockComment, text, line, col);
    }

    /// Plain (or byte) string bodies: consume to the closing quote,
    /// honoring `\"` and `\\` escapes.
    fn string(&mut self, line: u32, col: u32, prefix: String) {
        let mut text = prefix;
        text.push('"');
        self.bump();
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(escaped) = self.bump() {
                    text.push(escaped);
                }
            } else if c == '"' {
                break;
            }
        }
        self.push(TokenKind::Str, text, line, col);
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`. Returns false when
    /// the `r`/`b` starts a plain identifier instead.
    fn raw_or_byte_string(&mut self, line: u32, col: u32) -> bool {
        let mut ahead = 0;
        let mut prefix = String::new();
        if self.peek(0) == Some('b') {
            prefix.push('b');
            ahead += 1;
        }
        if self.peek(ahead) == Some('r') {
            prefix.push('r');
            ahead += 1;
        }
        let mut hashes = 0usize;
        while self.peek(ahead + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(ahead + hashes) != Some('"') {
            return false;
        }
        if !prefix.contains('r') && hashes > 0 {
            return false;
        }
        // Consume prefix and hashes.
        for _ in 0..(ahead + hashes) {
            self.bump();
        }
        if !prefix.contains('r') {
            // b"…" — ordinary escapes apply.
            self.string(line, col, prefix);
            return true;
        }
        let mut text = prefix;
        text.push_str(&"#".repeat(hashes));
        text.push('"');
        self.bump();
        let closer: String = std::iter::once('"')
            .chain(std::iter::repeat_n('#', hashes))
            .collect();
        let mut tail = String::new();
        while let Some(c) = self.bump() {
            text.push(c);
            tail.push(c);
            if tail.len() > closer.len() {
                tail.remove(0);
            }
            if tail == closer {
                break;
            }
        }
        self.push(TokenKind::Str, text, line, col);
        true
    }

    /// Disambiguates `'a` (lifetime) from `'x'` / `'\n'` (char).
    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        // A lifetime is `'` + ident-start NOT followed by a closing `'`.
        if let Some(first) = self.peek(1) {
            if (first.is_alphabetic() || first == '_') && self.peek(2) != Some('\'') {
                self.bump(); // '
                let mut name = String::new();
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        name.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokenKind::Lifetime, name, line, col);
                return;
            }
        }
        let mut text = String::from("'");
        self.bump();
        while let Some(c) = self.bump() {
            text.push(c);
            if c == '\\' {
                if let Some(escaped) = self.bump() {
                    text.push(escaped);
                }
            } else if c == '\'' {
                break;
            }
        }
        self.push(TokenKind::Char, text, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        // Leading digits (incl. 0x/0b/0o bodies and underscores).
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                // `1.0e-3` / `0x1p+2`: a sign directly after an exponent
                // marker belongs to the literal.
                text.push(c);
                self.bump();
                if (c == 'e' || c == 'E')
                    && !text.starts_with("0x")
                    && matches!(self.peek(0), Some('+') | Some('-'))
                {
                    text.push(self.bump().unwrap_or('+'));
                }
            } else if c == '.' {
                // `0..10` must lex as Num(0) Punct(.) Punct(.) Num(10).
                if self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            } else {
                break;
            }
        }
        self.push(TokenKind::Num, text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_strings_and_code_are_separated() {
        let toks = kinds("let x = \"a // not comment\"; // real");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("not comment")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::LineComment && t.contains("real")));
    }

    #[test]
    fn ranges_do_not_swallow_dots() {
        let toks = kinds("for i in 0..10 {}");
        let dots = toks
            .iter()
            .filter(|(k, t)| *k == TokenKind::Punct && t == ".")
            .count();
        assert_eq!(dots, 2);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Num && t == "10"));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = kinds("fn f<'a>(x: &'a str, c: char) { let y = 'y'; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "a"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Char && t == "'y'"));
    }

    #[test]
    fn raw_strings_and_positions() {
        let toks = lex("a\nr#\"x \" y\"#");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].kind, TokenKind::Str);
        assert_eq!(toks[1].line, 2);
        assert!(toks[1].text.contains("x \" y"));
    }

    #[test]
    fn nested_block_comments_close_once() {
        let toks = kinds("/* outer /* inner */ still */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[1], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn float_exponents_stay_one_token() {
        let toks = kinds("1.5e-3 + 2_000u64");
        assert_eq!(toks[0], (TokenKind::Num, "1.5e-3".into()));
        assert_eq!(toks[2], (TokenKind::Num, "2_000u64".into()));
    }
}
