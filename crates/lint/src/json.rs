//! Deterministic JSON rendering of a [`Report`].
//!
//! Hand-rolled for the same reason the lexer is: the container is
//! offline, so no serde. The output is byte-stable across runs —
//! findings arrive in (file, line, col) order from the driver and no
//! timestamps or host details are emitted — matching the repo-wide rule
//! that generated artifacts diff cleanly.

use crate::diagnostics::Finding;
use crate::Report;
use std::fmt::Write as _;

/// Renders `report` as the `results/LINT_report.json` document.
pub fn render(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"noble-lint/v1\",");
    let _ = writeln!(out, "  \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(out, "  \"errors\": {},", report.error_count());
    let _ = writeln!(out, "  \"warnings\": {},", report.warning_count());
    let _ = writeln!(out, "  \"suppressed\": {},", report.suppressed.len());
    out.push_str("  \"findings\": [");
    for (i, reported) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        finding_object(&mut out, &reported.finding, None);
    }
    if report.findings.is_empty() {
        out.push_str("],\n");
    } else {
        out.push_str("\n  ],\n");
    }
    out.push_str("  \"suppressed_findings\": [");
    for (i, sup) in report.suppressed.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        finding_object(&mut out, &sup.finding, Some(&sup.reason));
    }
    if report.suppressed.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n  ]\n");
    }
    out.push_str("}\n");
    out
}

/// One finding as a single-line JSON object.
fn finding_object(out: &mut String, f: &Finding, reason: Option<&str>) {
    out.push('{');
    let _ = write!(out, "\"lint\": {}", quote(f.lint));
    let _ = write!(out, ", \"severity\": {}", quote(f.severity.label()));
    let _ = write!(out, ", \"file\": {}", quote(&f.file));
    let _ = write!(out, ", \"line\": {}", f.line);
    let _ = write!(out, ", \"col\": {}", f.col);
    let _ = write!(out, ", \"message\": {}", quote(&f.message));
    if let Some(reason) = reason {
        let _ = write!(out, ", \"reason\": {}", quote(reason));
    }
    out.push('}');
}

/// JSON string escaping (quotes, backslashes, control chars).
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::Severity;
    use crate::{Reported, Suppressed};

    fn finding(lint: &'static str, line: u32) -> Finding {
        Finding {
            lint,
            file: "crates/serve/src/server.rs".into(),
            line,
            col: 3,
            width: 4,
            message: "a \"quoted\" message".into(),
            contract: "c",
            help: "h".into(),
            severity: Severity::Error,
        }
    }

    #[test]
    fn report_renders_counts_findings_and_reasons() {
        let report = Report {
            files_scanned: 2,
            findings: vec![Reported {
                finding: finding("wall-clock", 7),
                rendered: String::new(),
            }],
            suppressed: vec![Suppressed {
                finding: finding("panic-path", 9),
                reason: "poisoning recovery".into(),
            }],
        };
        let text = render(&report);
        assert!(text.contains("\"schema\": \"noble-lint/v1\""));
        assert!(text.contains("\"errors\": 1"));
        assert!(text.contains("\"suppressed\": 1"));
        assert!(text.contains("\\\"quoted\\\""));
        assert!(text.contains("\"reason\": \"poisoning recovery\""));
        // Byte-stable: rendering twice is identical.
        assert_eq!(text, render(&report));
    }

    #[test]
    fn empty_report_is_valid_and_minimal() {
        let text = render(&Report::default());
        assert!(text.contains("\"findings\": []"));
        assert!(text.contains("\"suppressed_findings\": []"));
    }
}
