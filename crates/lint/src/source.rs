//! The per-file analysis model the lints walk.
//!
//! A [`SourceFile`] owns the token stream plus two derived views every
//! lint needs:
//!
//! - `code`: indices of the non-comment tokens (lints scan these);
//! - `in_test`: whether each code token sits inside a `#[cfg(test)]`
//!   item or a `#[test]` function — contract lints police *shipping*
//!   code, and test bodies are free to `unwrap()` or build `HashMap`s.
//!
//! Test-region detection is structural, not textual: an attribute whose
//! content names `test` marks the *next item body* (the brace-matched
//! block after the attribute), so a `#[cfg(test)] mod tests { … }` is
//! skipped wholesale while the `fn` right after it is not.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::BTreeSet;

/// One lexed file plus derived lint views.
pub struct SourceFile {
    /// Repo-relative path with `/` separators (diagnostics + policy).
    pub path: String,
    /// Source lines, for diagnostic snippets.
    pub lines: Vec<String>,
    /// The full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of every non-comment token.
    pub code: Vec<usize>,
    /// Parallel to `code`: whether the token is inside a test region.
    pub in_test: Vec<bool>,
    /// Identifiers bound (anywhere in the file) to a `HashMap`/`HashSet`
    /// type: let bindings, fn params and struct fields alike.
    pub hash_names: BTreeSet<String>,
}

impl SourceFile {
    /// Lexes and analyzes one file.
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let tokens = lex(text);
        let code: Vec<usize> = (0..tokens.len())
            .filter(|&i| !tokens[i].is_comment())
            .collect();
        let in_test = mark_test_regions(&tokens, &code);
        let hash_names = collect_hash_names(&tokens, &code);
        SourceFile {
            path: path.to_string(),
            lines: text.lines().map(|l| l.to_string()).collect(),
            tokens,
            code,
            in_test,
            hash_names,
        }
    }

    /// The code token at code-index `ci`.
    pub fn tok(&self, ci: usize) -> &Token {
        &self.tokens[self.code[ci]]
    }

    /// Whether the code token at code-index `ci` is the identifier `s`.
    pub fn is_ident(&self, ci: usize, s: &str) -> bool {
        let t = self.tok(ci);
        t.kind == TokenKind::Ident && t.text == s
    }

    /// Whether the code token at code-index `ci` is the punct `c`.
    pub fn is_punct(&self, ci: usize, c: char) -> bool {
        let t = self.tok(ci);
        t.kind == TokenKind::Punct && t.text.len() == 1 && t.text.starts_with(c)
    }

    /// The source line `line` (1-based), or empty when out of range.
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line as usize - 1)
            .map(|s| s.as_str())
            .unwrap_or("")
    }

    /// Lines that carry at least one code (non-comment) token.
    pub fn code_lines(&self) -> BTreeSet<u32> {
        self.code.iter().map(|&i| self.tokens[i].line).collect()
    }
}

/// Marks the body of every item under a test attribute.
fn mark_test_regions(tokens: &[Token], code: &[usize]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut ci = 0;
    while ci < code.len() {
        if !is_test_attribute(tokens, code, &mut ci) {
            ci += 1;
            continue;
        }
        // `ci` now sits just past the attribute's closing `]`. Skip any
        // further attributes, then find the item body: the first `{` at
        // paren/bracket depth 0 (so `fn f(x: [u8; 2])` skips its groups),
        // or a `;` first for a body-less item.
        while is_test_attribute(tokens, code, &mut ci) || skip_attribute(tokens, code, &mut ci) {}
        let mut depth = 0i32;
        let mut body_start = None;
        let mut j = ci;
        while j < code.len() {
            let t = &tokens[code[j]];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        body_start = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        let Some(start) = body_start else {
            ci = j + 1;
            continue;
        };
        // Brace-match the body and mark it (attribute and header too —
        // a `#[test]` fn's signature is also test code).
        let mut braces = 0i32;
        let mut end = start;
        for (k, &idx) in code.iter().enumerate().skip(start) {
            let t = &tokens[idx];
            if t.kind == TokenKind::Punct {
                if t.text == "{" {
                    braces += 1;
                } else if t.text == "}" {
                    braces -= 1;
                    if braces == 0 {
                        end = k;
                        break;
                    }
                }
            }
            end = k;
        }
        for flag in in_test.iter_mut().take(end + 1).skip(ci) {
            *flag = true;
        }
        ci = end + 1;
    }
    in_test
}

/// If code-index `*ci` starts an attribute whose content mentions
/// `test` (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`), advances
/// `*ci` past its closing `]` and returns true.
fn is_test_attribute(tokens: &[Token], code: &[usize], ci: &mut usize) -> bool {
    let start = *ci;
    if !matches_punct(tokens, code, start, '#') {
        return false;
    }
    let mut j = start + 1;
    // Outer attributes only; `#![…]` is a crate attribute (ignored).
    if matches_punct(tokens, code, j, '!') {
        return false;
    }
    if !matches_punct(tokens, code, j, '[') {
        return false;
    }
    let mut depth = 0i32;
    let mut saw_test = false;
    let mut saw_not = false;
    while j < code.len() {
        let t = &tokens[code[j]];
        if t.kind == TokenKind::Punct {
            if t.text == "[" {
                depth += 1;
            } else if t.text == "]" {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        } else if t.kind == TokenKind::Ident && t.text == "test" {
            saw_test = true;
        } else if t.kind == TokenKind::Ident && t.text == "not" {
            // `#[cfg(not(test))]` marks *shipping* code — the exact
            // opposite of a test region.
            saw_not = true;
        }
        j += 1;
    }
    if saw_test && !saw_not {
        *ci = j + 1;
        true
    } else {
        false
    }
}

/// If code-index `*ci` starts any attribute, advances past it.
fn skip_attribute(tokens: &[Token], code: &[usize], ci: &mut usize) -> bool {
    let start = *ci;
    if !matches_punct(tokens, code, start, '#') || !matches_punct(tokens, code, start + 1, '[') {
        return false;
    }
    let mut depth = 0i32;
    let mut j = start + 1;
    while j < code.len() {
        let t = &tokens[code[j]];
        if t.kind == TokenKind::Punct {
            if t.text == "[" {
                depth += 1;
            } else if t.text == "]" {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
        }
        j += 1;
    }
    *ci = j + 1;
    true
}

fn matches_punct(tokens: &[Token], code: &[usize], ci: usize, c: char) -> bool {
    code.get(ci).is_some_and(|&idx| {
        let t = &tokens[idx];
        t.kind == TokenKind::Punct && t.text.len() == 1 && t.text.starts_with(c)
    })
}

/// Collects identifiers bound to `HashMap`/`HashSet` types anywhere in
/// the file: `name: HashMap<…>` (params, fields, annotated lets) and
/// `let name = HashMap::new()`-style constructions.
fn collect_hash_names(tokens: &[Token], code: &[usize]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for ci in 0..code.len() {
        let t = &tokens[code[ci]];
        if t.kind != TokenKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        // Walk back over the path prefix (`std :: collections ::`) and
        // reference sigils to the introducing `:` or `=`.
        let mut j = ci;
        while j > 0 {
            let p = &tokens[code[j - 1]];
            let is_path_piece = (p.kind == TokenKind::Ident
                && (p.text == "std" || p.text == "collections"))
                || (p.kind == TokenKind::Punct && matches!(p.text.as_str(), ":" | "&" | "<"));
            // A single `:` may be the annotation itself, so stop walking
            // when the `:` is not half of a `::`.
            if p.kind == TokenKind::Punct && p.text == ":" {
                let double = j >= 2 && {
                    let q = &tokens[code[j - 2]];
                    q.kind == TokenKind::Punct && q.text == ":"
                };
                if double {
                    j -= 2;
                    continue;
                }
                break;
            }
            if is_path_piece {
                j -= 1;
            } else {
                break;
            }
        }
        if j == 0 {
            continue;
        }
        let before = &tokens[code[j - 1]];
        if before.kind == TokenKind::Punct && before.text == ":" && j >= 2 {
            // `name : [&] [std::collections::] HashMap`
            let name = &tokens[code[j - 2]];
            if name.kind == TokenKind::Ident {
                names.insert(name.text.clone());
            }
        } else if before.kind == TokenKind::Punct && before.text == "=" && j >= 2 {
            // `let [mut] name = HashMap::…` (or a reassignment).
            let name = &tokens[code[j - 2]];
            if name.kind == TokenKind::Ident && name.text != "=" {
                names.insert(name.text.clone());
            }
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_cover_cfg_test_mod_but_not_neighbors() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\n\
                   fn also_live() {}\n";
        let f = SourceFile::parse("x.rs", src);
        let flags: Vec<(String, bool)> = f
            .code
            .iter()
            .zip(&f.in_test)
            .map(|(&i, &t)| (f.tokens[i].text.clone(), t))
            .collect();
        assert!(flags.iter().any(|(s, t)| s == "x" && !t));
        assert!(flags.iter().any(|(s, t)| s == "y" && *t));
        assert!(flags.iter().any(|(s, t)| s == "also_live" && !t));
    }

    #[test]
    fn hash_names_found_for_annotations_params_and_constructions() {
        let src = "struct S { table: HashMap<u32, u8> }\n\
                   fn f(votes: &std::collections::HashMap<usize, f64>) {\n\
                     let mut seen = std::collections::HashSet::new();\n\
                     let plain: Vec<u8> = Vec::new();\n\
                   }\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.hash_names.contains("table"));
        assert!(f.hash_names.contains("votes"));
        assert!(f.hash_names.contains("seen"));
        assert!(!f.hash_names.contains("plain"));
    }

    #[test]
    fn attribute_with_test_in_string_is_not_a_region() {
        let src = "#[doc = \"test\"]\nfn live() { x.unwrap(); }\n";
        let f = SourceFile::parse("x.rs", src);
        // The word `test` only appears inside a string literal, so the
        // attribute is not a test marker.
        assert!(f.in_test.iter().all(|&t| !t));
    }
}
