//! `noble-lint` — contract-enforcing static analysis for the NObLe
//! serving stack.
//!
//! The repo's correctness story rests on contracts that `rustc` cannot
//! see: logical time only on result paths, hash-iteration order never
//! reaching output, typed errors instead of panics on the serving path,
//! a declared lock order, bit-exact f64 kernels. This crate is a
//! self-contained checker for those contracts — a hand-rolled lexer
//! ([`lexer`]), a per-file analysis model ([`source`]), a pluggable
//! [`lints::Lint`] registry, path-scoped [`policy`], and a reasoned
//! suppression syntax ([`suppress`]). It depends on nothing outside
//! `std` (the build container is offline), which is also why the lints
//! walk token streams rather than a borrowed syntax tree.
//!
//! The driver here glues those layers: [`check_file`] runs every
//! in-scope lint on one parsed file and applies suppressions;
//! [`run`] walks the repo and aggregates a [`Report`] the CLI renders
//! as rustc-style text, a `--check` exit code, or `--json`.

pub mod diagnostics;
pub mod json;
pub mod lexer;
pub mod lints;
pub mod policy;
pub mod source;
pub mod suppress;

use diagnostics::{Finding, Severity};
use lints::Lint;
use policy::Policy;
use source::SourceFile;
use std::path::Path;

/// A kept finding plus its rendered (rustc-style) text.
pub struct Reported {
    /// The structured finding (drives JSON and exit codes).
    pub finding: Finding,
    /// The human rendering, snippet and caret run included.
    pub rendered: String,
}

/// A finding silenced by a reasoned allow.
pub struct Suppressed {
    /// The finding that would otherwise have been reported.
    pub finding: Finding,
    /// The reason string from the allow annotation.
    pub reason: String,
}

/// Everything one run produced.
#[derive(Default)]
pub struct Report {
    /// Number of `.rs` files parsed and walked.
    pub files_scanned: usize,
    /// Kept findings (errors and warnings), in (file, line, col) order.
    pub findings: Vec<Reported>,
    /// Findings silenced by reasoned allows, same order.
    pub suppressed: Vec<Suppressed>,
}

impl Report {
    /// Kept findings at [`Severity::Error`] — what fails `--check`.
    pub fn error_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|r| r.finding.severity == Severity::Error)
            .count()
    }

    /// Kept findings at [`Severity::Warning`].
    pub fn warning_count(&self) -> usize {
        self.findings.len() - self.error_count()
    }
}

/// Runs every lint whose policy scope covers `file`, applies the file's
/// allow annotations, and returns (kept, suppressed). Returns `None`
/// when no lint is in scope — such files are not parsed for
/// suppressions either, so an allow in an out-of-scope file is simply
/// inert rather than "unused".
pub fn check_file(
    file: &SourceFile,
    policy: &Policy,
    registry: &[Box<dyn Lint>],
    names: &[&'static str],
) -> Option<(Vec<Finding>, Vec<Suppressed>)> {
    let in_scope: Vec<&Box<dyn Lint>> = registry
        .iter()
        .filter(|l| policy.scope(l.name()).covers(&file.path))
        .collect();
    if in_scope.is_empty() {
        return None;
    }
    let mut raw = Vec::new();
    for lint in in_scope {
        raw.extend(lint.check(file, policy));
    }
    let sup = suppress::scan(file, names);
    let (mut kept, silenced) = suppress::apply(file, raw, &sup.allows);
    // Malformed allows are findings in their own right and cannot be
    // suppressed — an allow must never be able to excuse itself.
    kept.extend(sup.errors);
    kept.sort_by(|a, b| (a.line, a.col, a.lint).cmp(&(b.line, b.col, b.lint)));
    let suppressed = silenced
        .into_iter()
        .map(|finding| {
            let reason = sup
                .allows
                .iter()
                .find(|a| a.lint == finding.lint && a.target_line == finding.line)
                .map(|a| a.reason.clone())
                .unwrap_or_default();
            Suppressed { finding, reason }
        })
        .collect();
    Some((kept, suppressed))
}

/// Walks the repo at `root` and checks every `.rs` file under it.
///
/// Skipped subtrees: `target` and `.git` (build/VCS state), `fixtures`
/// (the lint crate's deliberately-violating test corpus), `results`
/// (generated artifacts).
///
/// # Errors
///
/// A string diagnostic when the walk itself fails (unreadable
/// directory). Unreadable or non-UTF-8 individual files are skipped.
pub fn run(root: &Path, policy: &Policy) -> Result<Report, String> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let registry = lints::registry();
    let names = lints::lint_names();
    let mut report = Report::default();
    for rel in files {
        let Ok(text) = std::fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        let file = SourceFile::parse(&rel, &text);
        report.files_scanned += 1;
        let Some((kept, suppressed)) = check_file(&file, policy, &registry, &names) else {
            continue;
        };
        for finding in kept {
            let rendered = finding.render(Some(&file));
            report.findings.push(Reported { finding, rendered });
        }
        report.suppressed.extend(suppressed);
    }
    Ok(report)
}

/// Recursively collects repo-relative `.rs` paths (with `/` separators).
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "target" | ".git" | "fixtures" | "results") {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                out.push(rel);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_file_runs_only_in_scope_lints_and_keeps_bad_allows() {
        let src = "fn f() { let t = Instant::now(); x.unwrap(); }\n\
                   // noble-lint: allow(wall-clock)\n";
        let file = SourceFile::parse("crates/serve/src/server.rs", src);
        let mut policy = Policy::default_policy();
        // Narrow panic-path away from serve so only wall-clock runs.
        policy.scopes.remove("panic-path");
        let registry = lints::registry();
        let names = lints::lint_names();
        let (kept, suppressed) = check_file(&file, &policy, &registry, &names).unwrap();
        assert!(suppressed.is_empty());
        let lints_hit: Vec<&str> = kept.iter().map(|f| f.lint).collect();
        assert!(lints_hit.contains(&"wall-clock"));
        assert!(lints_hit.contains(&"bad-allow"));
        assert!(!lints_hit.contains(&"panic-path"));
    }

    #[test]
    fn suppressed_findings_carry_their_reason() {
        let src = "fn f() {\n\
                   // noble-lint: allow(wall-clock, \"deadline only\")\n\
                   let t = Instant::now();\n\
                   }\n";
        let file = SourceFile::parse("crates/serve/src/server.rs", src);
        let policy = Policy::default_policy();
        let registry = lints::registry();
        let names = lints::lint_names();
        let (kept, suppressed) = check_file(&file, &policy, &registry, &names).unwrap();
        assert!(kept.iter().all(|f| f.lint != "wall-clock"));
        assert_eq!(suppressed.len(), 1);
        assert_eq!(suppressed[0].reason, "deadline only");
    }

    #[test]
    fn out_of_scope_file_is_skipped_entirely() {
        let src = "fn f() { x.unwrap(); }\n";
        let file = SourceFile::parse("crates/bench/src/main.rs", src);
        let mut policy = Policy::default_policy();
        policy.scopes.remove("unordered-iteration");
        let registry = lints::registry();
        let names = lints::lint_names();
        assert!(check_file(&file, &policy, &registry, &names).is_none());
    }
}
