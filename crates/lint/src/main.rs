//! The `noble-lint` CLI.
//!
//! ```text
//! cargo run -p noble-lint -- --check            # gate: nonzero exit on errors
//! cargo run -p noble-lint --                    # advisory: report, exit 0
//! cargo run -p noble-lint -- --json             # also write results/LINT_report.json
//! cargo run -p noble-lint -- --list             # registered lints + contracts
//! ```
//!
//! The policy comes from `noble-lint.toml` at the repo root (compiled-in
//! default when absent). `--root <path>` overrides the repo root; the
//! default is the current directory, which is the workspace root under
//! `cargo run`.

use noble_lint::policy::Policy;
use noble_lint::{json, lints, run};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    check: bool,
    json: Option<PathBuf>,
    list: bool,
    root: PathBuf,
}

const USAGE: &str = "usage: noble-lint [--check] [--json[=PATH]] [--root PATH] [--list]
  --check        exit nonzero when any unsuppressed error-level finding exists
  --json[=PATH]  write a JSON report (default results/LINT_report.json under the root)
  --root PATH    repo root to scan (default: current directory)
  --list         print the registered lints and the contracts they enforce";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        check: false,
        json: None,
        list: false,
        root: PathBuf::from("."),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => opts.check = true,
            "--json" => opts.json = Some(PathBuf::from("results/LINT_report.json")),
            "--list" => opts.list = true,
            "--root" => {
                let path = args.next().ok_or("--root needs a path")?;
                opts.root = PathBuf::from(path);
            }
            "--help" | "-h" => return Err(String::new()),
            other => {
                if let Some(path) = other.strip_prefix("--json=") {
                    opts.json = Some(PathBuf::from(path));
                } else {
                    return Err(format!("unknown argument `{other}`"));
                }
            }
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("noble-lint: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.list {
        for lint in lints::registry() {
            println!("{:<22} {}", lint.name(), lint.summary());
            println!("{:<22} contract: {}", "", lint.contract());
        }
        return ExitCode::SUCCESS;
    }
    let policy = match Policy::load(&opts.root) {
        Ok(policy) => policy,
        Err(msg) => {
            eprintln!("noble-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let report = match run(&opts.root, &policy) {
        Ok(report) => report,
        Err(msg) => {
            eprintln!("noble-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    for reported in &report.findings {
        print!("{}", reported.rendered);
        println!();
    }
    let errors = report.error_count();
    println!(
        "noble-lint: {} file(s) scanned, {} error(s), {} warning(s), {} suppressed by reasoned allows",
        report.files_scanned,
        errors,
        report.warning_count(),
        report.suppressed.len()
    );
    if let Some(json_path) = &opts.json {
        let path = if json_path.is_absolute() {
            json_path.clone()
        } else {
            opts.root.join(json_path)
        };
        if let Some(parent) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("noble-lint: cannot create {}: {e}", parent.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&path, json::render(&report)) {
            eprintln!("noble-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("noble-lint: wrote {}", path.display());
    }
    if opts.check && errors > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
