//! `unordered-iteration`: no hash-ordered iteration on output paths.

use super::{is_method_call, receiver_of, Lint};
use crate::diagnostics::{Finding, Severity};
use crate::lexer::TokenKind;
use crate::policy::Policy;
use crate::source::SourceFile;

/// Iteration methods whose order reaches the caller.
pub(crate) const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Flags iteration over `HashMap`/`HashSet` bindings in code whose
/// output is contract-bound to be deterministic.
///
/// `RandomState` hashing makes iteration order differ run to run, so a
/// hash-ordered loop feeding responses, zone events, snapshot bytes or
/// bench JSON silently breaks the bit-identical / sorted-output
/// contracts. The walker is type-blind, so it tracks identifiers bound
/// to hash types inside the file (annotations, params, fields,
/// `HashMap::new()` constructions) and flags `.iter()`-family calls and
/// `for … in` loops over them. Lookup-only tables (`.get`, `.entry`,
/// `.contains_key`) never fire.
pub struct UnorderedIteration;

impl Lint for UnorderedIteration {
    fn name(&self) -> &'static str {
        "unordered-iteration"
    }

    fn summary(&self) -> &'static str {
        "HashMap/HashSet iteration forbidden where output order must be deterministic"
    }

    fn contract(&self) -> &'static str {
        "responses, events, snapshots and bench JSON are bit-stable across runs — use \
         BTreeMap/BTreeSet or sort explicitly before order escapes (ARCHITECTURE.md, \
         determinism contracts)"
    }

    fn check(&self, file: &SourceFile, _policy: &Policy) -> Vec<Finding> {
        let mut findings = Vec::new();
        if file.hash_names.is_empty() {
            return findings;
        }
        for ci in 0..file.code.len() {
            if file.in_test[ci] {
                continue;
            }
            // `name.iter()`-family calls on a hash-typed binding.
            if ITER_METHODS.iter().any(|m| is_method_call(file, ci, m)) {
                if let Some(receiver) = receiver_of(file, ci) {
                    if file.hash_names.contains(&receiver) {
                        let tok = file.tok(ci);
                        findings.push(self.finding(
                            file,
                            tok.line,
                            tok.col,
                            tok.text.chars().count() as u32,
                            format!(
                                "iteration over hash-ordered `{receiver}` via `.{}()`",
                                tok.text
                            ),
                        ));
                    }
                }
                continue;
            }
            // `for pat in <expr>` where the expr is a bare (possibly
            // referenced/indexed) hash binding. Method-call iterables
            // (`m.keys()`) are covered by the rule above, so any `(` in
            // the iterable expression opts out here.
            if file.is_ident(ci, "for") {
                if let Some(f) = self.check_for_loop(file, ci) {
                    findings.push(f);
                }
            }
        }
        findings
    }
}

impl UnorderedIteration {
    fn finding(
        &self,
        file: &SourceFile,
        line: u32,
        col: u32,
        width: u32,
        message: String,
    ) -> Finding {
        Finding {
            lint: self.name(),
            file: file.path.clone(),
            line,
            col,
            width,
            message,
            contract: self.contract(),
            help: "switch the container to BTreeMap/BTreeSet, or collect and sort before \
                   the order can reach output"
                .into(),
            severity: Severity::Error,
        }
    }

    /// Scans `for <pat> in <expr> {` starting at the `for` token.
    fn check_for_loop(&self, file: &SourceFile, ci: usize) -> Option<Finding> {
        // Find the `in` keyword at bracket depth 0 (patterns may nest
        // tuples: `for (k, v) in …`).
        let mut j = ci + 1;
        let mut depth = 0i32;
        loop {
            if j >= file.code.len() || j > ci + 64 {
                return None;
            }
            let t = file.tok(j);
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" | ";" => return None,
                    _ => {}
                }
            } else if depth == 0 && t.kind == TokenKind::Ident && t.text == "in" {
                break;
            }
            j += 1;
        }
        // Iterable expression: tokens up to the body `{` at depth 0.
        let mut hash_hit: Option<usize> = None;
        let mut k = j + 1;
        depth = 0;
        while k < file.code.len() {
            let t = file.tok(k);
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" => return None, // method-call iterable: other rule's job
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    "{" if depth == 0 => break,
                    ";" => return None,
                    _ => {}
                }
            } else if t.kind == TokenKind::Ident && file.hash_names.contains(&t.text) {
                hash_hit = Some(k);
            }
            k += 1;
        }
        let hit = hash_hit?;
        let tok = file.tok(hit);
        Some(self.finding(
            file,
            tok.line,
            tok.col,
            tok.text.chars().count() as u32,
            format!("`for` loop iterates hash-ordered `{}`", tok.text),
        ))
    }
}
