//! The pluggable lint registry.
//!
//! Each lint guards one contract from ARCHITECTURE.md's determinism /
//! robustness tables. A lint is a token-stream walker over a
//! [`SourceFile`]; it never sees a syntax tree (see [`crate::lexer`]),
//! so each one documents the token patterns it matches and the
//! heuristics' known edges. New lints implement [`Lint`] and join
//! [`registry`].

use crate::diagnostics::Finding;
use crate::policy::Policy;
use crate::source::SourceFile;

mod float_determinism;
mod lock_discipline;
mod panic_path;
mod unordered_iteration;
mod wall_clock;

pub use float_determinism::FloatDeterminism;
pub use lock_discipline::LockDiscipline;
pub use panic_path::PanicPath;
pub use unordered_iteration::UnorderedIteration;
pub use wall_clock::WallClock;

/// One contract-enforcing lint.
pub trait Lint {
    /// Registry name (what `allow(...)` and the policy file use).
    fn name(&self) -> &'static str;
    /// One-line description for `--list`.
    fn summary(&self) -> &'static str;
    /// The repo contract the lint enforces (rendered under findings).
    fn contract(&self) -> &'static str;
    /// Walks one in-scope file and returns raw findings (suppression is
    /// applied by the driver).
    fn check(&self, file: &SourceFile, policy: &Policy) -> Vec<Finding>;
}

/// Every shipped lint, in stable order.
pub fn registry() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(WallClock),
        Box::new(UnorderedIteration),
        Box::new(PanicPath),
        Box::new(LockDiscipline),
        Box::new(FloatDeterminism),
    ]
}

/// Registry names, for the suppression scanner.
pub fn lint_names() -> Vec<&'static str> {
    registry().iter().map(|l| l.name()).collect()
}

/// Shared walker helper: whether the code token at `ci` is a method
/// call `.name(` — i.e. preceded by `.` and followed by `(`.
pub(crate) fn is_method_call(file: &SourceFile, ci: usize, name: &str) -> bool {
    file.is_ident(ci, name)
        && ci > 0
        && file.is_punct(ci - 1, '.')
        && ci + 1 < file.code.len()
        && file.is_punct(ci + 1, '(')
}

/// Shared walker helper: the receiver identifier of the method call at
/// `ci` (the ident before the dot), skipping one balanced index
/// expression — `self.shards[i].lock()` resolves to `shards`.
pub(crate) fn receiver_of(file: &SourceFile, ci: usize) -> Option<String> {
    // ci is the method ident; ci - 1 is the dot.
    let mut j = ci.checked_sub(2)?;
    if file.is_punct(j, ']') {
        let mut depth = 0i32;
        loop {
            if file.is_punct(j, ']') {
                depth += 1;
            } else if file.is_punct(j, '[') {
                depth -= 1;
                if depth == 0 {
                    j = j.checked_sub(1)?;
                    break;
                }
            }
            j = j.checked_sub(1)?;
        }
    }
    let t = file.tok(j);
    if t.kind == crate::lexer::TokenKind::Ident {
        Some(t.text.clone())
    } else {
        None
    }
}
