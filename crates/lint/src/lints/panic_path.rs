//! `panic-path`: no panics in serving-stack library code.

use super::{is_method_call, Lint};
use crate::diagnostics::{Finding, Severity};
use crate::policy::Policy;
use crate::source::SourceFile;

const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];
const PANIC_MACROS: [&str; 4] = ["panic", "unimplemented", "todo", "unreachable"];

/// Flags `.unwrap()`, `.expect(…)` and panic-family macros outside test
/// code.
///
/// The serving stack's error contract is typed end to end: a bad
/// request gets a `ServeError`-shaped reply, a corrupt snapshot a
/// typed `BadSnapshot` — never a worker panic that takes a shard (and
/// every request parked behind it) down with it. Library code converts
/// failures into `ServeError`/`NobleError`; invariant `expect`s that
/// survive review carry a reasoned allow, and lock-poisoning unwraps
/// were replaced wholesale by the `relock` recovery path.
pub struct PanicPath;

impl Lint for PanicPath {
    fn name(&self) -> &'static str {
        "panic-path"
    }

    fn summary(&self) -> &'static str {
        "unwrap()/expect()/panic-family macros forbidden in library code"
    }

    fn contract(&self) -> &'static str {
        "serving and core library code returns typed ServeError/NobleError, never panics \
         (ARCHITECTURE.md, robustness contracts)"
    }

    fn check(&self, file: &SourceFile, _policy: &Policy) -> Vec<Finding> {
        let mut findings = Vec::new();
        for ci in 0..file.code.len() {
            if file.in_test[ci] {
                continue;
            }
            let tok = file.tok(ci);
            let (what, help): (String, &str) =
                if PANIC_METHODS.iter().any(|m| is_method_call(file, ci, m)) {
                    (
                        format!(".{}()", tok.text),
                        "convert to a typed error (`ok_or_else`/`map_err` + `?`), recover \
                         (`unwrap_or_else`, the `relock` poisoning path), or justify the \
                         invariant with a reasoned allow",
                    )
                } else if PANIC_MACROS.iter().any(|m| file.is_ident(ci, m))
                    && ci + 1 < file.code.len()
                    && file.is_punct(ci + 1, '!')
                {
                    (
                        format!("{}!", tok.text),
                        "return a typed ServeError/NobleError instead of panicking",
                    )
                } else {
                    continue;
                };
            findings.push(Finding {
                lint: self.name(),
                file: file.path.clone(),
                line: tok.line,
                col: tok.col,
                width: tok.text.chars().count() as u32,
                message: format!("`{what}` on a library path can panic a shard worker"),
                contract: self.contract(),
                help: help.into(),
                severity: Severity::Error,
            });
        }
        findings
    }
}
