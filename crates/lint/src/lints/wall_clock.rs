//! `wall-clock`: no wall-clock reads in result-affecting code.

use super::Lint;
use crate::diagnostics::{Finding, Severity};
use crate::policy::Policy;
use crate::source::SourceFile;

/// Flags `Instant::now()` and `SystemTime::now()` in scoped paths.
///
/// The tracking-session determinism contract (ARCHITECTURE.md) is built
/// on *logical time*: callers submit `at` stamps, and replaying the same
/// stamps reproduces bit-identical tracks and event sequences. One
/// wall-clock read on a result path silently breaks replayability. The
/// batch server's *batching deadlines* and latency statistics are
/// legitimate wall-clock users — batch boundaries never change answers
/// (shape-invariant kernels) — and carry reasoned allows.
pub struct WallClock;

impl Lint for WallClock {
    fn name(&self) -> &'static str {
        "wall-clock"
    }

    fn summary(&self) -> &'static str {
        "Instant::now()/SystemTime::now() forbidden in result-affecting code"
    }

    fn contract(&self) -> &'static str {
        "logical time only on result paths — same submitted `at` stamps must replay to \
         bit-identical tracks and events (ARCHITECTURE.md, determinism contracts)"
    }

    fn check(&self, file: &SourceFile, _policy: &Policy) -> Vec<Finding> {
        let mut findings = Vec::new();
        for ci in 0..file.code.len() {
            if file.in_test[ci] {
                continue;
            }
            let clock = if file.is_ident(ci, "Instant") {
                "Instant"
            } else if file.is_ident(ci, "SystemTime") {
                "SystemTime"
            } else {
                continue;
            };
            let call = ci + 4 < file.code.len()
                && file.is_punct(ci + 1, ':')
                && file.is_punct(ci + 2, ':')
                && file.is_ident(ci + 3, "now")
                && file.is_punct(ci + 4, '(');
            if !call {
                continue;
            }
            let tok = file.tok(ci);
            findings.push(Finding {
                lint: self.name(),
                file: file.path.clone(),
                line: tok.line,
                col: tok.col,
                width: clock.chars().count() as u32 + 5,
                message: format!("wall-clock read `{clock}::now()` in result-affecting code"),
                contract: self.contract(),
                help: "thread a caller-supplied logical timestamp through instead; if this \
                       read only shapes batching deadlines or latency metrics (never \
                       results), suppress it with a reasoned allow"
                    .into(),
                severity: Severity::Error,
            });
        }
        findings
    }
}
