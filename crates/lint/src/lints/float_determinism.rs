//! `float-determinism`: exact-by-construction kernels stay exact.

use super::{is_method_call, receiver_of, Lint};
use crate::diagnostics::{Finding, Severity};
use crate::policy::Policy;
use crate::source::SourceFile;

use super::unordered_iteration::ITER_METHODS;

const REDUCERS: [&str; 3] = ["sum", "fold", "product"];

/// Flags `as f32` narrowing casts and float reductions over unordered
/// iterators in kernel/decode code.
///
/// The matmul kernels and decode paths are the *bit-exact reference*
/// every serving-parity and snapshot-roundtrip test pins against
/// (f64 end to end, shape/thread-invariant dispatch). Two silent ways
/// to lose that: truncating through `f32` mid-pipeline, and reducing
/// floats in a container-defined order (float addition does not
/// reassociate). The planned f32/quantized fast path (ROADMAP) must
/// land behind explicit accuracy gates — with reasoned allows where it
/// intentionally trades bits — not leak into the reference kernels.
pub struct FloatDeterminism;

impl Lint for FloatDeterminism {
    fn name(&self) -> &'static str {
        "float-determinism"
    }

    fn summary(&self) -> &'static str {
        "no f32-truncating casts or hash-ordered float reductions in kernel/decode code"
    }

    fn contract(&self) -> &'static str {
        "kernels and decode paths are exact-by-construction f64 — the reference the \
         parity suites pin bit-identity against (ARCHITECTURE.md, determinism contracts)"
    }

    fn check(&self, file: &SourceFile, _policy: &Policy) -> Vec<Finding> {
        let mut findings = Vec::new();
        for ci in 0..file.code.len() {
            if file.in_test[ci] {
                continue;
            }
            // `<expr> as f32` — a truncation the f64 reference never does.
            if file.is_ident(ci, "as") && ci + 1 < file.code.len() && file.is_ident(ci + 1, "f32") {
                let tok = file.tok(ci);
                findings.push(Finding {
                    lint: self.name(),
                    file: file.path.clone(),
                    line: tok.line,
                    col: tok.col,
                    width: 6,
                    message: "`as f32` narrowing cast in exact-kernel code".into(),
                    contract: self.contract(),
                    help: "keep the reference path f64; an intentional f32 fast path \
                           belongs behind an accuracy gate with a reasoned allow"
                        .into(),
                    severity: Severity::Error,
                });
                continue;
            }
            // `hash.iter()…sum()/fold()/product()` — a reduction whose
            // operand order the hasher picks.
            if ITER_METHODS.iter().any(|m| is_method_call(file, ci, m)) {
                let Some(receiver) = receiver_of(file, ci) else {
                    continue;
                };
                if !file.hash_names.contains(&receiver) {
                    continue;
                }
                // Scan the rest of the method chain (until the statement
                // ends) for a reduction.
                let mut depth = 0i32;
                let mut k = ci + 1;
                while k < file.code.len() {
                    let t = file.tok(k);
                    if t.kind == crate::lexer::TokenKind::Punct {
                        match t.text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => {
                                depth -= 1;
                                if depth < 0 {
                                    break;
                                }
                            }
                            ";" if depth == 0 => break,
                            _ => {}
                        }
                    } else if depth == 0 && REDUCERS.iter().any(|r| is_method_call(file, k, r)) {
                        let tok = file.tok(k);
                        findings.push(Finding {
                            lint: self.name(),
                            file: file.path.clone(),
                            line: tok.line,
                            col: tok.col,
                            width: tok.text.chars().count() as u32,
                            message: format!(
                                "float reduction `.{}()` over hash-ordered `{receiver}` — \
                                 addition order is hasher-defined",
                                tok.text
                            ),
                            contract: self.contract(),
                            help: "iterate a BTree container (or sort into a Vec) so the \
                                   reduction order is fixed"
                                .into(),
                            severity: Severity::Error,
                        });
                        break;
                    }
                    k += 1;
                }
            }
        }
        findings
    }
}
