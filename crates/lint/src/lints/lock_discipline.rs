//! `lock-discipline`: guard scopes vs. channels and the declared order.

use super::{is_method_call, receiver_of, Lint};
use crate::diagnostics::{Finding, Severity};
use crate::lexer::TokenKind;
use crate::policy::Policy;
use crate::source::SourceFile;

const CHANNEL_OPS: [&str; 4] = ["send", "recv", "try_recv", "recv_timeout"];

/// Tracks mutex-guard scopes through the token stream and flags:
///
/// 1. a channel `send`/`recv` while any guard is held — a blocked
///    channel op under a lock is the classic serving-stack deadlock
///    (the deliberate marker-ordering sends in the paged engine carry
///    reasoned allows citing the no-drop argument);
/// 2. acquiring a lock that the declared order
///    (`[lock-discipline] order` in `noble-lint.toml`) places *before*
///    one already held — the PR 5/6 deadlock-freedom argument is
///    exactly that the catalog/slots locks are always outermost;
/// 3. re-acquiring a lock whose guard is still live (self-deadlock).
///
/// Acquisition sites are `.lock()` calls and the `relock(&…)` poisoning
/// recovery helper; a guard's name is the receiver field (`self.slots
/// .lock()` → `slots`). `let`-bound guards live to the end of their
/// block (or an explicit `drop(guard)`); temporary guards
/// (`relock(&x).field += 1;`) die at the statement's `;`. Condvar
/// `wait`/`wait_timeout` atomically release and re-acquire, so they are
/// neutral here. The tracker is intra-function by construction — guard
/// state cannot leak across `fn` items because every body closes its
/// braces.
pub struct LockDiscipline;

struct GuardState {
    /// Receiver field name (`slots`, `paged`, …).
    name: String,
    /// `let` binding holding the guard, when one exists.
    binding: Option<String>,
    /// Brace depth at acquisition (scope tracking).
    depth: i32,
    /// Acquisition line, cited in findings.
    line: u32,
}

impl Lint for LockDiscipline {
    fn name(&self) -> &'static str {
        "lock-discipline"
    }

    fn summary(&self) -> &'static str {
        "no channel ops under a lock guard; declared lock order never inverted"
    }

    fn contract(&self) -> &'static str {
        "deadlock freedom by construction: locks in declared order only (slots/state \
         before session shards before counters), channel waits never under a guard \
         without a documented no-drop argument (ARCHITECTURE.md, threading model)"
    }

    fn check(&self, file: &SourceFile, policy: &Policy) -> Vec<Finding> {
        let mut findings = Vec::new();
        let order = &policy.lock_order;
        let mut guards: Vec<GuardState> = Vec::new();
        let mut depth = 0i32;
        for ci in 0..file.code.len() {
            let tok = file.tok(ci);
            if tok.kind == TokenKind::Punct {
                match tok.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        guards.retain(|g| g.depth <= depth);
                    }
                    ";" => {
                        let d = depth;
                        guards.retain(|g| !(g.binding.is_none() && g.depth >= d));
                    }
                    _ => {}
                }
                continue;
            }
            if file.in_test[ci] {
                continue;
            }
            // `drop(binding)` releases a named guard early.
            if file.is_ident(ci, "drop") && ci + 2 < file.code.len() && file.is_punct(ci + 1, '(') {
                let dropped = file.tok(ci + 2).text.clone();
                guards.retain(|g| g.binding.as_deref() != Some(dropped.as_str()));
                continue;
            }
            // Acquisitions: `.lock()` or `relock(&path)`.
            let acquired = if is_method_call(file, ci, "lock") {
                receiver_of(file, ci)
            } else if file.is_ident(ci, "relock")
                && ci + 1 < file.code.len()
                && file.is_punct(ci + 1, '(')
                && (ci == 0 || !file.is_punct(ci - 1, '.'))
            {
                relock_argument(file, ci)
            } else {
                None
            };
            if let Some(name) = acquired {
                for held in &guards {
                    if held.name == name {
                        findings.push(self.finding(
                            file,
                            file.tok(ci),
                            format!(
                                "`{name}` re-acquired while its guard from line {} is \
                                 still live (self-deadlock)",
                                held.line
                            ),
                        ));
                    } else if let (Some(new_rank), Some(held_rank)) = (
                        order.iter().position(|o| o == &name),
                        order.iter().position(|o| o == &held.name),
                    ) {
                        if new_rank < held_rank {
                            findings.push(self.finding(
                                file,
                                file.tok(ci),
                                format!(
                                    "`{name}` acquired while holding `{}` (line {}) — \
                                     declared order puts `{name}` first",
                                    held.name, held.line
                                ),
                            ));
                        }
                    }
                }
                guards.push(GuardState {
                    name,
                    binding: binding_of(file, ci),
                    depth,
                    line: file.tok(ci).line,
                });
                continue;
            }
            // Channel ops under any held guard.
            if CHANNEL_OPS.iter().any(|m| is_method_call(file, ci, m)) {
                if let Some(held) = guards.last() {
                    let tok = file.tok(ci);
                    findings.push(self.finding(
                        file,
                        tok,
                        format!(
                            "channel `.{}()` while holding the `{}` guard from line {}",
                            tok.text, held.name, held.line
                        ),
                    ));
                }
            }
        }
        findings
    }
}

impl LockDiscipline {
    fn finding(&self, file: &SourceFile, tok: &crate::lexer::Token, message: String) -> Finding {
        Finding {
            lint: self.name(),
            file: file.path.clone(),
            line: tok.line,
            col: tok.col,
            width: tok.text.chars().count() as u32,
            message,
            contract: self.contract(),
            help: "shrink the guard scope (drop before the channel op / second lock), \
                   acquire in declared order, or document the no-drop argument with a \
                   reasoned allow"
                .into(),
            severity: Severity::Error,
        }
    }
}

/// The lock name inside `relock(&self.slots)`-style calls: the last
/// identifier at bracket depth 0 before the closing paren.
fn relock_argument(file: &SourceFile, ci: usize) -> Option<String> {
    let mut k = ci + 2;
    let mut paren = 1i32;
    let mut bracket = 0i32;
    let mut last: Option<String> = None;
    while k < file.code.len() {
        let t = file.tok(k);
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" => paren += 1,
                ")" => {
                    paren -= 1;
                    if paren == 0 {
                        break;
                    }
                }
                "[" => bracket += 1,
                "]" => bracket -= 1,
                _ => {}
            }
        } else if t.kind == TokenKind::Ident && paren == 1 && bracket == 0 {
            last = Some(t.text.clone());
        }
        k += 1;
    }
    last
}

/// The `let` binding receiving the guard acquired at `ci`, found by
/// scanning back to the statement start for `… <ident> = …`.
fn binding_of(file: &SourceFile, ci: usize) -> Option<String> {
    let mut k = ci;
    while k > 0 {
        k -= 1;
        let t = file.tok(k);
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                ";" | "{" | "}" => return None,
                "=" => {
                    let b = file.tok(k.checked_sub(1)?);
                    if b.kind == TokenKind::Ident {
                        return Some(b.text.clone());
                    }
                    return None;
                }
                _ => {}
            }
        }
        if ci - k > 48 {
            return None;
        }
    }
    None
}
