//! Path-scoped lint policy.
//!
//! Each lint is enforced only on the paths where its contract actually
//! holds: `wall-clock` polices result-affecting serving code but not the
//! benchmark harness (whose whole job is reading the wall clock), and
//! `lock-discipline` knows the serving stack's declared lock order.
//!
//! The policy lives in `noble-lint.toml` at the repo root. Only the
//! subset of TOML the policy needs is parsed (hand-rolled — the
//! container is offline): `[section]` headers, `key = "string"` and
//! `key = ["a", "b"]` entries, `#` comments. A missing file falls back
//! to [`Policy::default_policy`], which encodes the same scopes.

use std::collections::BTreeMap;
use std::path::Path;

/// Per-lint scope: which repo-relative path prefixes it runs on.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    /// Path prefixes the lint is enforced under.
    pub include: Vec<String>,
    /// Path prefixes carved back out of `include`.
    pub exclude: Vec<String>,
}

impl Scope {
    /// Whether `path` (repo-relative, `/`-separated) is in scope.
    pub fn covers(&self, path: &str) -> bool {
        let included = self.include.iter().any(|p| path.starts_with(p.as_str()));
        let excluded = self.exclude.iter().any(|p| path.starts_with(p.as_str()));
        included && !excluded
    }
}

/// The full policy: per-lint scopes plus shared contract knobs.
#[derive(Debug, Clone, Default)]
pub struct Policy {
    /// Scope per lint name; a lint absent from the map runs nowhere.
    pub scopes: BTreeMap<String, Scope>,
    /// Declared lock-acquisition order (first = outermost). A guard for
    /// a later name must never be held while acquiring an earlier one.
    pub lock_order: Vec<String>,
}

impl Policy {
    /// Scope for `lint`, empty (covers nothing) when unconfigured.
    pub fn scope(&self, lint: &str) -> Scope {
        self.scopes.get(lint).cloned().unwrap_or_default()
    }

    /// The repo's checked-in policy, used when `noble-lint.toml` is
    /// missing. Kept in sync with that file by the `policy_parses`
    /// fixture test.
    pub fn default_policy() -> Policy {
        let mut scopes = BTreeMap::new();
        let serve_core = vec!["crates/serve/src".into(), "crates/core/src".into()];
        scopes.insert(
            "wall-clock".into(),
            Scope {
                include: {
                    let mut v = serve_core.clone();
                    v.push("crates/geo/src".into());
                    v.push("crates/net/src".into());
                    v
                },
                // The open-loop load generator's whole job is pacing
                // arrivals and stamping latencies off the wall clock.
                exclude: vec!["crates/net/src/loadgen.rs".into()],
            },
        );
        scopes.insert(
            "unordered-iteration".into(),
            Scope {
                include: vec![
                    "crates/serve/src".into(),
                    "crates/core/src".into(),
                    "crates/geo/src".into(),
                    "crates/nn/src".into(),
                    "crates/linalg/src".into(),
                    "crates/manifold/src".into(),
                    "crates/quantize/src".into(),
                    "crates/datasets/src".into(),
                    "crates/bench/src".into(),
                    "crates/net/src".into(),
                ],
                exclude: Vec::new(),
            },
        );
        scopes.insert(
            "panic-path".into(),
            Scope {
                include: {
                    let mut v = serve_core.clone();
                    v.push("crates/net/src".into());
                    v
                },
                exclude: Vec::new(),
            },
        );
        scopes.insert(
            "lock-discipline".into(),
            Scope {
                include: vec!["crates/serve/src".into()],
                exclude: Vec::new(),
            },
        );
        scopes.insert(
            "float-determinism".into(),
            Scope {
                include: vec![
                    "crates/linalg/src".into(),
                    "crates/core/src".into(),
                    "crates/nn/src".into(),
                    "crates/quantize/src".into(),
                ],
                // The reduced-precision tier is sanctioned per-module:
                // narrowing is these files' entire job, and the parity
                // gates covering them live in the lowp/lowered test
                // suites rather than in bit-exactness.
                exclude: vec![
                    "crates/linalg/src/lowp.rs".into(),
                    "crates/nn/src/lowered.rs".into(),
                    "crates/core/src/lowered.rs".into(),
                ],
            },
        );
        Policy {
            scopes,
            lock_order: vec![
                "buffers".into(),
                "slots".into(),
                "state".into(),
                "shards".into(),
                "paged".into(),
                "stats".into(),
            ],
        }
    }

    /// A policy that runs every registered lint on every path — what the
    /// fixture suite uses, so fixtures need no path gymnastics.
    pub fn everywhere(lints: &[&'static str]) -> Policy {
        let mut policy = Policy::default_policy();
        policy.scopes = lints
            .iter()
            .map(|&name| {
                (
                    name.to_string(),
                    Scope {
                        include: vec![String::new()],
                        exclude: Vec::new(),
                    },
                )
            })
            .collect();
        policy
    }

    /// Loads `noble-lint.toml` from `root`, falling back to the default
    /// policy when absent.
    ///
    /// # Errors
    ///
    /// A string diagnostic when the file exists but fails to parse.
    pub fn load(root: &Path) -> Result<Policy, String> {
        let path = root.join("noble-lint.toml");
        match std::fs::read_to_string(&path) {
            Ok(text) => parse(&text),
            Err(_) => Ok(Policy::default_policy()),
        }
    }
}

/// Parses the policy mini-TOML (see the module docs for the subset).
pub fn parse(text: &str) -> Result<Policy, String> {
    let mut policy = Policy {
        scopes: BTreeMap::new(),
        lock_order: Vec::new(),
    };
    let mut section = String::new();
    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0;
    while i < lines.len() {
        let line = lines[i].trim();
        let lineno = i + 1;
        i += 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().to_string();
            policy.scopes.entry(section.clone()).or_default();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("noble-lint.toml:{lineno}: expected `key = value`"));
        };
        let key = key.trim();
        // Multi-line arrays: keep consuming lines until the closing `]`.
        let mut value = value.trim().to_string();
        while value.starts_with('[') && !value.ends_with(']') {
            let Some(cont) = lines.get(i) else {
                return Err(format!("noble-lint.toml:{lineno}: unterminated array"));
            };
            i += 1;
            let cont = cont.trim();
            if !cont.starts_with('#') {
                value.push_str(cont);
            }
        }
        let values = parse_value(&value).map_err(|e| format!("noble-lint.toml:{lineno}: {e}"))?;
        match (section.as_str(), key) {
            ("", _) => {
                return Err(format!(
                    "noble-lint.toml:{lineno}: `{key}` outside any [lint] section"
                ))
            }
            ("lock-discipline", "order") => policy.lock_order = values,
            (_, "include") => {
                policy.scopes.entry(section.clone()).or_default().include = values;
            }
            (_, "exclude") => {
                policy.scopes.entry(section.clone()).or_default().exclude = values;
            }
            (_, other) => {
                return Err(format!(
                    "noble-lint.toml:{lineno}: unknown key `{other}` in [{section}]"
                ))
            }
        }
    }
    Ok(policy)
}

/// Parses `"a"` or `["a", "b"]` into a string list.
fn parse_value(value: &str) -> Result<Vec<String>, String> {
    let value = value.trim();
    if let Some(inner) = value.strip_prefix('[').and_then(|v| v.strip_suffix(']')) {
        let mut out = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            out.push(unquote(part)?);
        }
        return Ok(out);
    }
    Ok(vec![unquote(value)?])
}

fn unquote(s: &str) -> Result<String, String> {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .map(|s| s.to_string())
        .ok_or_else(|| format!("expected a quoted string, found `{s}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_order() {
        let policy = parse(
            "# comment\n\
             [wall-clock]\n\
             include = [\"crates/serve/src\", \"crates/core/src\"]\n\
             exclude = [\"crates/serve/src/bench.rs\"]\n\
             [lock-discipline]\n\
             include = [\"crates/serve/src\"]\n\
             order = [\"slots\", \"paged\"]\n",
        )
        .unwrap();
        let scope = policy.scope("wall-clock");
        assert!(scope.covers("crates/serve/src/server.rs"));
        assert!(!scope.covers("crates/serve/src/bench.rs"));
        assert!(!scope.covers("crates/bench/src/lib.rs"));
        assert_eq!(policy.lock_order, vec!["slots", "paged"]);
    }

    #[test]
    fn parses_multi_line_arrays() {
        let policy = parse(
            "[panic-path]\n\
             include = [\n\
                 \"crates/serve/src\",\n\
                 # carve-outs would go here\n\
                 \"crates/core/src\",\n\
             ]\n",
        )
        .unwrap();
        assert!(policy.scope("panic-path").covers("crates/core/src/lib.rs"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse("include = [\"a\"]\n").is_err());
        assert!(parse("[x]\ninclude = unquoted\n").is_err());
        assert!(parse("[x]\nmystery = \"a\"\n").is_err());
    }

    #[test]
    fn unconfigured_lint_covers_nothing() {
        let policy = parse("[wall-clock]\ninclude = [\"src\"]\n").unwrap();
        assert!(!policy.scope("panic-path").covers("src/lib.rs"));
    }
}
