//! The `// noble-lint: allow(<lint>, "<reason>")` suppression syntax.
//!
//! An allow comment suppresses findings of the named lint on the first
//! *code* line at or after the comment: a trailing allow covers its own
//! line, an allow on a line of its own covers the next line that carries
//! code (blank lines and further comments in between are skipped, so a
//! short justification block above the site works too).
//!
//! Two rules keep the escape hatch honest:
//!
//! - **every allow must carry a reason** — `allow(wall-clock)` without a
//!   quoted reason string is itself an error (`bad-allow`), because an
//!   unexplained suppression is indistinguishable from a silenced bug;
//! - **allows must be live** — an allow that suppresses nothing is
//!   reported as a warning (`unused-allow`) so stale annotations are
//!   weeded out instead of accumulating.

use crate::diagnostics::{Finding, Severity};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// One parsed allow annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Lint name being suppressed.
    pub lint: String,
    /// The mandatory human reason.
    pub reason: String,
    /// Line the comment sits on.
    pub comment_line: u32,
    /// The code line this allow covers.
    pub target_line: u32,
}

/// Everything the suppression scan produced for one file.
pub struct Suppressions {
    /// Well-formed allows, in file order.
    pub allows: Vec<Allow>,
    /// Malformed allow comments (missing reason, unknown lint, bad
    /// syntax) — these are error findings in their own right.
    pub errors: Vec<Finding>,
}

/// Scans `file`'s comments for allow annotations. `known_lints` is the
/// registry's name list; an allow naming an unknown lint is an error
/// (likely a typo that would otherwise silently suppress nothing).
pub fn scan(file: &SourceFile, known_lints: &[&'static str]) -> Suppressions {
    let code_lines = file.code_lines();
    let mut allows = Vec::new();
    let mut errors = Vec::new();
    for token in &file.tokens {
        if token.kind != TokenKind::LineComment {
            continue;
        }
        let Some(at) = token.text.find("noble-lint:") else {
            continue;
        };
        let rest = token.text[at + "noble-lint:".len()..].trim();
        let mut bad = |message: String| {
            errors.push(Finding {
                lint: "bad-allow",
                file: file.path.clone(),
                line: token.line,
                col: token.col,
                width: token.text.chars().count() as u32,
                message,
                contract: "every suppression names a registered lint and carries a reason \
                           (README \u{201c}Static analysis\u{201d})",
                help: "write `// noble-lint: allow(<lint>, \"<reason>\")`".into(),
                severity: Severity::Error,
            });
        };
        let Some(inner) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.trim_end().strip_suffix(')'))
        else {
            bad(format!(
                "malformed noble-lint annotation: expected `allow(<lint>, \"<reason>\")`, \
                 found `{rest}`"
            ));
            continue;
        };
        let Some((name, reason_part)) = inner.split_once(',') else {
            bad(format!(
                "allow for `{}` is missing its reason string",
                inner.trim()
            ));
            continue;
        };
        let name = name.trim().to_string();
        let reason_part = reason_part.trim();
        let reason = reason_part
            .strip_prefix('"')
            .and_then(|r| r.strip_suffix('"'))
            .map(|r| r.trim().to_string());
        let Some(reason) = reason.filter(|r| !r.is_empty()) else {
            bad(format!("allow for `{name}` is missing its reason string"));
            continue;
        };
        if !known_lints.contains(&name.as_str()) {
            bad(format!(
                "allow names unknown lint `{name}` (known: {})",
                known_lints.join(", ")
            ));
            continue;
        }
        // Target: this line if it carries code (trailing allow), else
        // the next line that does.
        let target_line = if code_lines.contains(&token.line) {
            token.line
        } else {
            code_lines
                .range(token.line + 1..)
                .next()
                .copied()
                .unwrap_or(token.line)
        };
        allows.push(Allow {
            lint: name,
            reason,
            comment_line: token.line,
            target_line,
        });
    }
    Suppressions { allows, errors }
}

/// Splits `findings` into (kept, suppressed) under `allows`, and appends
/// an `unused-allow` warning for every allow that caught nothing.
pub fn apply(
    file: &SourceFile,
    findings: Vec<Finding>,
    allows: &[Allow],
) -> (Vec<Finding>, Vec<Finding>) {
    let mut used = vec![false; allows.len()];
    let mut kept = Vec::new();
    let mut suppressed = Vec::new();
    for finding in findings {
        let hit = allows
            .iter()
            .enumerate()
            .find(|(_, a)| a.lint == finding.lint && a.target_line == finding.line);
        if let Some((i, _)) = hit {
            used[i] = true;
            suppressed.push(finding);
        } else {
            kept.push(finding);
        }
    }
    for (allow, used) in allows.iter().zip(used) {
        if !used {
            kept.push(Finding {
                lint: "unused-allow",
                file: file.path.clone(),
                line: allow.comment_line,
                col: 1,
                width: 1,
                message: format!(
                    "allow({}) suppresses nothing on line {}",
                    allow.lint, allow.target_line
                ),
                contract: "suppressions must be live; stale allows hide future regressions",
                help: "remove the annotation (or move it next to the violation it excuses)".into(),
                severity: Severity::Warning,
            });
        }
    }
    (kept, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse("x.rs", src)
    }

    #[test]
    fn trailing_and_preceding_allows_pick_the_right_target() {
        let f = file(
            "let a = now(); // noble-lint: allow(wall-clock, \"trailing\")\n\
             // noble-lint: allow(panic-path, \"next line\")\n\
             \n\
             let b = x.unwrap();\n",
        );
        let s = scan(&f, &["wall-clock", "panic-path"]);
        assert!(s.errors.is_empty());
        assert_eq!(s.allows.len(), 2);
        assert_eq!(s.allows[0].target_line, 1);
        assert_eq!(s.allows[1].target_line, 4);
    }

    #[test]
    fn reasonless_and_unknown_allows_are_errors() {
        let f = file(
            "// noble-lint: allow(wall-clock)\n\
             // noble-lint: allow(wall-clock, \"\")\n\
             // noble-lint: allow(no-such-lint, \"reason\")\n\
             // noble-lint: disallow(x)\n",
        );
        let s = scan(&f, &["wall-clock"]);
        assert_eq!(s.allows.len(), 0);
        assert_eq!(s.errors.len(), 4);
        assert!(s.errors.iter().all(|e| e.lint == "bad-allow"));
    }

    #[test]
    fn unused_allow_warns_and_used_allow_suppresses() {
        let f = file(
            "// noble-lint: allow(wall-clock, \"deadline only\")\n\
             let t = Instant::now();\n\
             // noble-lint: allow(wall-clock, \"stale\")\n\
             let x = 1;\n",
        );
        let s = scan(&f, &["wall-clock"]);
        let finding = Finding {
            lint: "wall-clock",
            file: "x.rs".into(),
            line: 2,
            col: 9,
            width: 12,
            message: "m".into(),
            contract: "c",
            help: "h".into(),
            severity: Severity::Error,
        };
        let (kept, suppressed) = apply(&f, vec![finding], &s.allows);
        assert_eq!(suppressed.len(), 1);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].lint, "unused-allow");
        assert_eq!(kept[0].line, 3);
    }
}
