//! Findings and their rustc-style rendering.

use crate::source::SourceFile;
use std::fmt::Write as _;

/// How serious a finding is. Only `Error` findings fail `--check`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory (unused allows, style nits); reported but non-fatal.
    Warning,
    /// A contract violation; fails `--check` unless suppressed.
    Error,
}

impl Severity {
    /// Lowercase label for rendering and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One lint finding at one source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The lint that fired (its registry name), e.g. `wall-clock`.
    pub lint: &'static str,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Width of the offending token span, in chars (for the caret run).
    pub width: u32,
    /// One-line statement of what is wrong.
    pub message: String,
    /// The contract this violates (rendered as `= contract: …`).
    pub contract: &'static str,
    /// How to fix or suppress it (rendered as `= help: …`).
    pub help: String,
    /// Severity; see [`Severity`].
    pub severity: Severity,
}

impl Finding {
    /// Renders the finding in rustc's two-space-gutter style, with the
    /// offending source line and a caret run under the span.
    pub fn render(&self, source: Option<&SourceFile>) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}[{}]: {}",
            self.severity.label(),
            self.lint,
            self.message
        );
        let _ = writeln!(out, "  --> {}:{}:{}", self.file, self.line, self.col);
        if let Some(src) = source {
            let text = src.line_text(self.line);
            if !text.is_empty() {
                let gutter = self.line.to_string();
                let pad = " ".repeat(gutter.len());
                let _ = writeln!(out, "{pad} |");
                let _ = writeln!(out, "{gutter} | {text}");
                let caret_pad: String = text
                    .chars()
                    .take(self.col.saturating_sub(1) as usize)
                    .map(|c| if c == '\t' { '\t' } else { ' ' })
                    .collect();
                let carets = "^".repeat(self.width.max(1) as usize);
                let _ = writeln!(out, "{pad} | {caret_pad}{carets}");
            }
        }
        let _ = writeln!(out, "   = contract: {}", self.contract);
        let _ = writeln!(out, "   = help: {}", self.help);
        out
    }
}
