//! Fixture proof that every lint is live.
//!
//! Each registered lint ships a `fixtures/<lint>/bad.rs` that must fire
//! and a `fixtures/<lint>/good.rs` that must stay silent — the good
//! fixture includes a suppressed-with-reason case, so the allow syntax
//! is exercised per lint too. The loop iterates the registry itself,
//! which doubles as the meta-test: adding a lint without a fixture pair
//! fails here (the fixture files simply don't exist).
//!
//! Two repo-level checks ride along: the real tree must be clean under
//! the checked-in policy (the same gate CI's `--check` runs), and
//! `noble-lint.toml` must stay in sync with `Policy::default_policy()`
//! so a missing config file can never silently weaken the gate.

use noble_lint::diagnostics::Severity;
use noble_lint::policy::Policy;
use noble_lint::source::SourceFile;
use noble_lint::{check_file, lints, run};
use std::path::{Path, PathBuf};

fn fixture_path(lint: &str, which: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(lint)
        .join(which)
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate dir is two levels below the repo root")
        .to_path_buf()
}

/// Runs exactly one lint over a fixture — the policy scopes only that
/// lint (everywhere), so fixtures never trip neighboring lints — and
/// returns (kept findings, suppression reasons).
fn run_single_lint(lint_name: &'static str, path: &Path) -> (Vec<String>, Vec<String>) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    let rel = format!(
        "fixtures/{lint_name}/{}",
        path.file_name().unwrap().to_string_lossy()
    );
    let file = SourceFile::parse(&rel, &text);
    let policy = Policy::everywhere(&[lint_name]);
    let registry = lints::registry();
    let names = lints::lint_names();
    let Some((kept, suppressed)) = check_file(&file, &policy, &registry, &names) else {
        return (Vec::new(), Vec::new());
    };
    (
        kept.iter()
            .map(|f| format!("{}:{} {}", f.line, f.lint, f.message))
            .collect(),
        suppressed.iter().map(|s| s.reason.clone()).collect(),
    )
}

#[test]
fn every_lint_fires_on_its_bad_fixture_and_not_on_its_good_one() {
    let registry = lints::registry();
    assert!(
        registry.len() >= 5,
        "expected the five contract lints, found {}",
        registry.len()
    );
    for lint in &registry {
        let name = lint.name();

        let (bad, bad_suppressed) = run_single_lint(name, &fixture_path(name, "bad.rs"));
        assert!(
            !bad.is_empty(),
            "lint `{name}` did not fire on its bad fixture — it is dead"
        );
        assert!(
            bad_suppressed.is_empty(),
            "bad fixture for `{name}` must not carry allows, got {bad_suppressed:?}"
        );

        let (good, good_suppressed) = run_single_lint(name, &fixture_path(name, "good.rs"));
        assert!(
            good.is_empty(),
            "lint `{name}` fired on its good fixture: {good:?}"
        );
        assert!(
            !good_suppressed.is_empty(),
            "good fixture for `{name}` must include a suppressed-with-reason case"
        );
        assert!(
            good_suppressed.iter().all(|r| !r.is_empty()),
            "every suppression in `{name}`'s good fixture must carry a reason"
        );
    }
}

#[test]
fn bad_fixture_findings_are_errors() {
    // `--check` gates on errors only, so a lint demoted to Warning
    // would pass the fixture-fires test above yet never fail CI.
    let registry = lints::registry();
    let names = lints::lint_names();
    for lint in &registry {
        let name = lint.name();
        let path = fixture_path(name, "bad.rs");
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
        let file = SourceFile::parse(&format!("fixtures/{name}/bad.rs"), &text);
        let policy = Policy::everywhere(&[name]);
        let (kept, _) = check_file(&file, &policy, &registry, &names)
            .expect("bad fixture is in scope for its own lint");
        assert!(
            kept.iter().all(|f| f.severity == Severity::Error),
            "findings for `{name}` must be errors so --check fails on them"
        );
    }
}

#[test]
fn the_real_tree_is_clean_under_the_checked_in_policy() {
    let root = repo_root();
    let policy = Policy::load(&root).expect("noble-lint.toml parses");
    let report = run(&root, &policy).expect("repo walk succeeds");
    let errors: Vec<&str> = report
        .findings
        .iter()
        .filter(|r| r.finding.severity == Severity::Error)
        .map(|r| r.rendered.as_str())
        .collect();
    assert!(
        errors.is_empty(),
        "the repo must pass its own lint gate, found:\n{}",
        errors.join("\n")
    );
    assert!(
        report.suppressed.iter().all(|s| !s.reason.is_empty()),
        "every allow in the tree must carry a reason"
    );
    assert!(report.files_scanned > 100, "walk looks truncated");
}

#[test]
fn lowered_precision_modules_are_sanctioned_by_path_scope() {
    // The reduced-precision tier (f32/int8 kernels, lowered models) is
    // carved out of `float-determinism` as a *policy* decision — one
    // scoped exclude per module — rather than line allows scattered
    // through the narrowing code. The exact kernels around those
    // modules must stay covered.
    let policy = Policy::load(&repo_root()).expect("noble-lint.toml parses");
    let scope = policy.scope("float-determinism");
    for guarded in [
        "crates/linalg/src/gemm.rs",
        "crates/linalg/src/matrix.rs",
        "crates/nn/src/network.rs",
        "crates/nn/src/serialize.rs",
        "crates/core/src/wifi/decode.rs",
    ] {
        assert!(scope.covers(guarded), "{guarded} must stay lint-guarded");
    }
    for sanctioned in [
        "crates/linalg/src/lowp.rs",
        "crates/nn/src/lowered.rs",
        "crates/core/src/lowered.rs",
    ] {
        assert!(
            !scope.covers(sanctioned),
            "{sanctioned} is a lowered-precision module and must be \
             excluded by path scope, not by line allows"
        );
    }
}

#[test]
fn checked_in_policy_matches_the_builtin_default() {
    // `Policy::load` falls back to `default_policy()` when the file is
    // missing; the two must agree or that fallback silently changes the
    // gate.
    let loaded = Policy::load(&repo_root()).expect("noble-lint.toml parses");
    assert_eq!(
        format!("{loaded:?}"),
        format!("{:?}", Policy::default_policy()),
        "noble-lint.toml drifted from Policy::default_policy()"
    );
}
