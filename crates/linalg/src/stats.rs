//! Summary statistics for evaluation.
//!
//! The paper reports mean and median position error; the harness
//! additionally reports RMSE and tail percentiles. [`Summary`] bundles all
//! of them from one pass over the error sample.

use crate::LinalgError;

/// Index of the maximum element; ties resolve to the first occurrence.
///
/// Returns `None` on an empty slice or if every element is NaN.
pub fn argmax(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum element; ties resolve to the first occurrence.
///
/// Returns `None` on an empty slice or if every element is NaN.
pub fn argmin(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in a.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if v >= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Sample median (average of the two central order statistics for even n).
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] on an empty slice.
pub fn median(a: &[f64]) -> Result<f64, LinalgError> {
    percentile(a, 50.0)
}

/// Linear-interpolated percentile `p` in `[0, 100]`.
///
/// # Errors
///
/// - [`LinalgError::Empty`] on an empty slice.
/// - [`LinalgError::InvalidArgument`] when `p` is outside `[0, 100]`.
pub fn percentile(a: &[f64], p: f64) -> Result<f64, LinalgError> {
    if a.is_empty() {
        return Err(LinalgError::Empty);
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(LinalgError::InvalidArgument(format!(
            "percentile {p} outside [0, 100]"
        )));
    }
    let mut sorted = a.to_vec();
    sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Ok(sorted[lo])
    } else {
        let frac = rank - lo as f64;
        Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Sample standard deviation (population formula, i.e. divide by n).
///
/// Returns 0.0 for slices with fewer than two elements.
pub fn std_dev(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = crate::vector::mean(a);
    let var = a.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / a.len() as f64;
    var.sqrt()
}

/// One-pass summary of an error sample: the statistics every experiment
/// runner prints.
///
/// # Example
///
/// ```
/// use noble_linalg::Summary;
///
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 10.0]).unwrap();
/// assert_eq!(s.count, 4);
/// assert_eq!(s.mean, 4.0);
/// assert_eq!(s.median, 2.5);
/// assert_eq!(s.max, 10.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Root mean square.
    pub rmse: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Summary {
    /// Builds a summary from raw samples.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] when `samples` is empty.
    pub fn from_samples(samples: &[f64]) -> Result<Self, LinalgError> {
        if samples.is_empty() {
            return Err(LinalgError::Empty);
        }
        let mean = crate::vector::mean(samples);
        let rmse = (samples.iter().map(|v| v * v).sum::<f64>() / samples.len() as f64).sqrt();
        Ok(Summary {
            count: samples.len(),
            mean,
            median: median(samples)?,
            rmse,
            std_dev: std_dev(samples),
            min: samples.iter().cloned().fold(f64::INFINITY, f64::min),
            max: samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            p75: percentile(samples, 75.0)?,
            p90: percentile(samples, 90.0)?,
            p95: percentile(samples, 95.0)?,
        })
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3} median={:.3} rmse={:.3} p90={:.3} max={:.3}",
            self.count, self.mean, self.median, self.rmse, self.p90, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_argmin_basic() {
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), Some(1));
        assert_eq!(argmin(&[1.0, 5.0, 3.0]), Some(0));
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmin(&[]), None);
    }

    #[test]
    fn argmax_first_tie_wins() {
        assert_eq!(argmax(&[2.0, 2.0, 1.0]), Some(0));
        assert_eq!(argmin(&[1.0, 0.5, 0.5]), Some(1));
    }

    #[test]
    fn argmax_skips_nan() {
        assert_eq!(argmax(&[f64::NAN, 1.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN]), None);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
        assert!(median(&[]).is_err());
    }

    #[test]
    fn percentile_bounds() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&v, 100.0).unwrap(), 4.0);
        assert!(percentile(&v, 101.0).is_err());
        assert!(percentile(&v, -1.0).is_err());
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(percentile(&v, 25.0).unwrap(), 2.5);
    }

    #[test]
    fn std_dev_known() {
        // Population std of [2,4,4,4,5,5,7,9] is 2.
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&v) - 2.0).abs() < 1e-12);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn summary_fields_consistent() {
        let s = Summary::from_samples(&[0.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 3);
        assert!((s.mean - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.median, 3.0);
        assert!((s.rmse - (25.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 4.0);
        assert!(s.p75 <= s.p90 && s.p90 <= s.p95);
        assert!(Summary::from_samples(&[]).is_err());
    }

    #[test]
    fn summary_display_nonempty() {
        let s = Summary::from_samples(&[1.0]).unwrap();
        assert!(s.to_string().contains("mean"));
    }
}
