//! A minimal scoped "thread pool" built on [`std::thread::scope`].
//!
//! The suite runs in offline containers without rayon, so the parallel
//! kernels (blocked matmul, pairwise distances, batch k-d tree queries)
//! share these two std-only helpers instead. Threads are spawned per call
//! and joined before returning — no detached workers, no channels, no
//! unsafe — which keeps the helpers composable with borrowed data.
//!
//! The worker count is resolved by [`num_threads`]: an explicit
//! [`set_num_threads`] override wins, then the `NOBLE_THREADS` environment
//! variable, then [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};

/// Serializes tests that mutate the process-wide thread override so they
/// don't race each other under the parallel test harness.
#[cfg(test)]
pub(crate) static TEST_THREAD_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Process-wide worker-count override; 0 means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Whether the current thread *is* one of this module's scoped
    /// workers. Nested parallel regions would oversubscribe the machine
    /// multiplicatively (N shard trainers x M matmul workers), so inside
    /// a worker [`num_threads`] reports 1 and nested kernels run serial.
    static IN_PARALLEL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Runs `f` with the current thread marked as a parallel worker.
fn as_worker<R>(f: impl FnOnce() -> R) -> R {
    IN_PARALLEL_WORKER.with(|flag| flag.set(true));
    let result = f();
    IN_PARALLEL_WORKER.with(|flag| flag.set(false));
    result
}

/// Overrides the worker count used by the parallel kernels.
///
/// Pass `0` to clear the override and fall back to `NOBLE_THREADS` /
/// detected parallelism. Benchmarks use this to sweep thread counts.
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::SeqCst);
}

/// Worker count the parallel kernels will use.
///
/// Resolution order: [`set_num_threads`] override, the `NOBLE_THREADS`
/// environment variable, then detected hardware parallelism (minimum 1).
/// On a thread that is itself one of this module's scoped workers the
/// answer is always 1, so nested parallel regions (a matmul inside a
/// parallel shard-training sweep, say) never multiply thread counts.
pub fn num_threads() -> usize {
    if IN_PARALLEL_WORKER.with(|flag| flag.get()) {
        return 1;
    }
    let forced = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("NOBLE_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Splits `data` into chunks of `chunk_len` elements and runs
/// `f(chunk_index, chunk)` over them on up to `threads` scoped workers.
///
/// Chunks are dealt round-robin to workers, so `f` must be independent
/// across chunks (it is called concurrently). With `threads <= 1` — or a
/// single chunk — everything runs on the calling thread, which keeps the
/// serial path allocation-free and deterministic for tests.
///
/// # Panics
///
/// Panics if `chunk_len` is zero while `data` is non-empty.
pub fn parallel_chunks_mut<T, F>(data: &mut [T], chunk_len: usize, threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(chunk_len > 0, "parallel_chunks_mut: chunk_len must be > 0");
    let n_chunks = data.len().div_ceil(chunk_len);
    if threads <= 1 || n_chunks <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let workers = threads.min(n_chunks);
    let mut assignments: Vec<Vec<(usize, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
        assignments[i % workers].push((i, chunk));
    }
    let f = &f;
    std::thread::scope(|s| {
        for work in assignments {
            s.spawn(move || {
                as_worker(|| {
                    for (i, chunk) in work {
                        f(i, chunk);
                    }
                });
            });
        }
    });
}

/// Splits `0..n` into up to `threads` contiguous ranges, maps each through
/// `f` on a scoped worker, and returns the results in range order.
///
/// With `threads <= 1` (or a single item) `f` runs on the calling thread.
pub fn parallel_map_ranges<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = threads.clamp(1, n);
    if workers == 1 {
        return vec![f(0..n)];
    }
    let per = n.div_ceil(workers);
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * per;
                let hi = ((w + 1) * per).min(n);
                s.spawn(move || as_worker(|| f(lo..hi)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_all_elements() {
        for threads in [1, 2, 3, 8] {
            let mut data = vec![0u64; 37];
            parallel_chunks_mut(&mut data, 5, threads, |i, chunk| {
                for v in chunk.iter_mut() {
                    *v = i as u64 + 1;
                }
            });
            assert!(data.iter().all(|&v| v > 0), "threads={threads}");
            // Chunk 0 covers the first 5 elements, etc.
            assert_eq!(data[0], 1);
            assert_eq!(data[36], 8);
        }
    }

    #[test]
    fn chunks_empty_and_serial() {
        let mut empty: Vec<u8> = Vec::new();
        parallel_chunks_mut(&mut empty, 4, 4, |_, _| panic!("no chunks expected"));
        let mut one = vec![0u8; 3];
        parallel_chunks_mut(&mut one, 10, 4, |i, chunk| {
            assert_eq!(i, 0);
            chunk.fill(7);
        });
        assert_eq!(one, vec![7, 7, 7]);
    }

    #[test]
    fn map_ranges_ordered_and_complete() {
        for threads in [1, 2, 5, 16] {
            let parts = parallel_map_ranges(11, threads, |r| r.collect::<Vec<usize>>());
            let flat: Vec<usize> = parts.into_iter().flatten().collect();
            assert_eq!(flat, (0..11).collect::<Vec<_>>(), "threads={threads}");
        }
        assert!(parallel_map_ranges(0, 4, |_| 1).is_empty());
    }

    #[test]
    fn nested_regions_report_one_thread() {
        let _guard = TEST_THREAD_LOCK.lock().unwrap();
        set_num_threads(4);
        // Inside a spawned worker, num_threads() collapses to 1 so nested
        // kernels never multiply the thread count; the calling thread is
        // unaffected, and serial (inline) execution does not set the flag.
        let seen = parallel_map_ranges(4, 4, |_| num_threads());
        assert!(seen.iter().all(|&n| n == 1), "workers saw {seen:?}");
        assert_eq!(num_threads(), 4, "caller unaffected");
        let inline = parallel_map_ranges(1, 1, |_| num_threads());
        assert_eq!(inline, vec![4], "inline execution is not a worker");
        set_num_threads(0);
    }

    #[test]
    fn override_wins_and_clears() {
        let _guard = TEST_THREAD_LOCK.lock().unwrap();
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(0);
        assert!(num_threads() >= 1);
    }
}
