//! Dense linear algebra substrate for the NObLe localization suite.
//!
//! Everything here is written from scratch on top of `std`: a row-major
//! [`Matrix`] type, vector kernels, LU and Cholesky factorizations,
//! symmetric eigensolvers (cyclic Jacobi and power iteration with
//! deflation), double centering for multidimensional scaling, and the
//! summary statistics used throughout the evaluation harness.
//!
//! The crate exists because the NObLe reproduction needs linear algebra in
//! three places: the neural-network substrate (`noble-nn`), the manifold
//! learning baselines (`noble-manifold`, which needs eigendecompositions for
//! MDS/Isomap/LLE), and the evaluation metrics. All exact routines operate
//! on `f64`; the accuracy-gated serving fast path additionally ships an
//! f32 gemm family ([`MatrixF32`], [`matmul_f32`]) and an int8 row-quantized
//! matmul ([`QuantizedMatrixI8`], [`matmul_i8`]) with the same
//! thread/batch-shape bit-stability contract as the f64 kernels.
//!
//! # Example
//!
//! ```
//! use noble_linalg::Matrix;
//!
//! let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]).unwrap();
//! let b = a.matmul(&a.transpose()).unwrap();
//! assert_eq!(b.shape(), (2, 2));
//! ```

mod centering;
mod eigen;
mod error;
mod gemm;
mod lowp;
mod matrix;
mod qr;
mod solve;
mod stats;
pub mod threads;
mod vector;

pub use centering::{double_center, gram_from_distances};
pub use eigen::{
    jacobi_eigen, power_iteration, smallest_eigenpairs, top_eigenpairs, top_eigenpairs_lenient,
    EigenPair, EigenSort,
};
pub use error::LinalgError;
pub use gemm::{matmul_blocked, matmul_naive, matmul_parallel, matmul_transposed};
pub use lowp::{
    matmul_f32, matmul_f32_blocked, matmul_f32_naive, matmul_f32_parallel, matmul_i8,
    matmul_i8_parallel, tanh_f32_fast, MatrixF32, QuantizedMatrixI8,
};
pub use matrix::Matrix;
pub use qr::{least_squares, qr_decompose, QrFactors};
pub use solve::{cholesky, lu_decompose, lu_solve, solve, solve_cholesky, LuFactors};
pub use stats::{argmax, argmin, median, percentile, std_dev, Summary};
pub use threads::{num_threads, parallel_chunks_mut, parallel_map_ranges, set_num_threads};
pub use vector::{
    add_assign, axpy, dot, euclidean_distance, linspace, mean, norm, normalize_in_place,
    scale_in_place, squared_distance, sub,
};
