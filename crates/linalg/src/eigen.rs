//! Symmetric eigensolvers.
//!
//! Three strategies, matching the needs of the manifold-learning substrate:
//!
//! - [`jacobi_eigen`]: cyclic Jacobi rotations — full spectrum, robust, for
//!   matrices up to a few hundred rows (LLE's bottom-spectrum problems on
//!   landmark subsets).
//! - [`top_eigenpairs`]: power iteration with Hotelling deflation — the
//!   handful of dominant eigenpairs of a large Gram matrix (classical
//!   MDS / Isomap embeddings).
//! - [`smallest_eigenpairs`]: spectral-shift power iteration — the bottom
//!   eigenpairs needed by LLE without inverting anything.

use crate::{LinalgError, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An eigenvalue with its (unit-norm) eigenvector.
#[derive(Debug, Clone, PartialEq)]
pub struct EigenPair {
    /// The eigenvalue.
    pub value: f64,
    /// The corresponding unit eigenvector.
    pub vector: Vec<f64>,
}

/// Ordering for returned eigenpairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EigenSort {
    /// Largest eigenvalue first.
    Descending,
    /// Smallest eigenvalue first.
    Ascending,
}

/// Full eigendecomposition of a symmetric matrix by the cyclic Jacobi
/// method.
///
/// Returns all eigenpairs sorted per `sort`. Cost is `O(n^3)` per sweep;
/// intended for `n` up to roughly 500.
///
/// # Errors
///
/// - [`LinalgError::NotSquare`] for non-square input.
/// - [`LinalgError::InvalidArgument`] when the matrix is not symmetric
///   (tolerance `1e-8`).
/// - [`LinalgError::NoConvergence`] if off-diagonal mass fails to vanish in
///   100 sweeps (does not happen for well-posed symmetric input).
pub fn jacobi_eigen(a: &Matrix, sort: EigenSort) -> Result<Vec<EigenPair>, LinalgError> {
    let n = a.rows();
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if !a.is_symmetric(1e-8) {
        return Err(LinalgError::InvalidArgument(
            "jacobi_eigen requires a symmetric matrix".to_string(),
        ));
    }
    if n == 0 {
        return Ok(Vec::new());
    }

    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    const MAX_SWEEPS: usize = 100;

    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if off.sqrt() < 1e-11 {
            let mut pairs: Vec<EigenPair> = (0..n)
                .map(|k| EigenPair {
                    value: m[(k, k)],
                    vector: v.column(k),
                })
                .collect();
            match sort {
                EigenSort::Descending => {
                    pairs.sort_by(|a, b| b.value.partial_cmp(&a.value).unwrap())
                }
                EigenSort::Ascending => {
                    pairs.sort_by(|a, b| a.value.partial_cmp(&b.value).unwrap())
                }
            }
            return Ok(pairs);
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable rotation parameter selection (Golub & Van Loan).
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(LinalgError::NoConvergence {
        method: "jacobi_eigen",
        iterations: MAX_SWEEPS,
    })
}

/// Dominant eigenpair of a symmetric matrix by power iteration.
///
/// `seed` controls the random starting vector, making runs reproducible.
///
/// # Errors
///
/// - [`LinalgError::NotSquare`] / [`LinalgError::Empty`] on bad input.
/// - [`LinalgError::NoConvergence`] if the iteration stalls (e.g. the two
///   dominant eigenvalues coincide in magnitude with opposite signs).
pub fn power_iteration(
    a: &Matrix,
    max_iter: usize,
    tol: f64,
    seed: u64,
) -> Result<EigenPair, LinalgError> {
    match power_iteration_inner(a, max_iter, tol, seed)? {
        (pair, true) => Ok(pair),
        (_, false) => Err(LinalgError::NoConvergence {
            method: "power_iteration",
            iterations: max_iter,
        }),
    }
}

/// Like [`power_iteration`] but returns the best iterate even when the
/// residual test was not met (flagged by the boolean).
///
/// Eigenvalue clusters make strict power iteration stall; for embedding
/// work (MDS/Isomap) a near-converged deep component is harmless, so the
/// lenient variant lets callers accept it knowingly.
fn power_iteration_inner(
    a: &Matrix,
    max_iter: usize,
    tol: f64,
    seed: u64,
) -> Result<(EigenPair, bool), LinalgError> {
    let n = a.rows();
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    crate::vector::normalize_in_place(&mut v);
    // Scale for the residual test so tolerance is relative to ||A||.
    let a_scale = a.frobenius_norm().max(1.0);
    let mut lambda = 0.0;

    for _ in 0..max_iter {
        let mut w = a.matvec(&v)?;
        let norm = crate::vector::normalize_in_place(&mut w);
        if norm < 1e-300 {
            // Matrix annihilated the vector: eigenvalue 0 with this vector.
            return Ok((
                EigenPair {
                    value: 0.0,
                    vector: v,
                },
                true,
            ));
        }
        let aw = a.matvec(&w)?;
        lambda = crate::vector::dot(&w, &aw);
        // Residual ||A w - lambda w|| measures eigenvector quality directly;
        // the Rayleigh quotient alone converges before the vector does.
        let residual: f64 = aw
            .iter()
            .zip(&w)
            .map(|(x, y)| (x - lambda * y) * (x - lambda * y))
            .sum::<f64>()
            .sqrt();
        v = w;
        if residual < tol.sqrt() * a_scale * 1e-2 {
            return Ok((
                EigenPair {
                    value: lambda,
                    vector: v,
                },
                true,
            ));
        }
    }
    Ok((
        EigenPair {
            value: lambda,
            vector: v,
        },
        false,
    ))
}

/// Top-`k` eigenpairs of a symmetric matrix by power iteration with
/// Hotelling deflation, sorted by |λ| descending.
///
/// Suitable for large Gram matrices when only a few components are needed
/// (MDS/Isomap embeddings). Eigenvalues returned are the *signed* values.
///
/// # Errors
///
/// Propagates [`power_iteration`] failures and validates `k <= n`. Callers
/// that prefer a best-effort answer over an error on clustered spectra
/// should use [`top_eigenpairs_lenient`].
pub fn top_eigenpairs(a: &Matrix, k: usize, seed: u64) -> Result<Vec<EigenPair>, LinalgError> {
    top_eigenpairs_impl(a, k, seed, true)
}

/// Like [`top_eigenpairs`], but when a component fails the convergence
/// test (eigenvalue clusters stall power iteration), retries once from a
/// fresh start and then accepts the best iterate instead of erroring.
///
/// Appropriate for embedding work (Isomap / landmark MDS) where a
/// near-converged deep component perturbs the embedding by less than the
/// data noise; *not* appropriate when exact eigenvectors matter (LLE's
/// bottom spectrum — use the strict variant and fall back to
/// [`jacobi_eigen`]).
///
/// # Errors
///
/// Validates shapes and `k <= n`; never fails on convergence.
pub fn top_eigenpairs_lenient(
    a: &Matrix,
    k: usize,
    seed: u64,
) -> Result<Vec<EigenPair>, LinalgError> {
    top_eigenpairs_impl(a, k, seed, false)
}

fn top_eigenpairs_impl(
    a: &Matrix,
    k: usize,
    seed: u64,
    strict: bool,
) -> Result<Vec<EigenPair>, LinalgError> {
    let n = a.rows();
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if k > n {
        return Err(LinalgError::InvalidArgument(format!(
            "requested {k} eigenpairs from a {n}x{n} matrix"
        )));
    }
    let mut deflated = a.clone();
    let mut out = Vec::with_capacity(k);
    for idx in 0..k {
        let pair =
            match power_iteration_inner(&deflated, 2000, 1e-12, seed.wrapping_add(idx as u64))? {
                (pair, true) => pair,
                (best, false) => {
                    if strict {
                        return Err(LinalgError::NoConvergence {
                            method: "top_eigenpairs",
                            iterations: 2000,
                        });
                    }
                    let retry_seed = seed.wrapping_add(idx as u64).wrapping_mul(0x9E3779B9);
                    match power_iteration_inner(&deflated, 4000, 1e-10, retry_seed)? {
                        (pair, true) => pair,
                        (retry_best, false) => {
                            // Keep whichever iterate has the larger Rayleigh
                            // quotient magnitude (further along the dominant
                            // direction).
                            if retry_best.value.abs() > best.value.abs() {
                                retry_best
                            } else {
                                best
                            }
                        }
                    }
                }
            };
        // Hotelling deflation: A <- A - lambda v v^T
        for i in 0..n {
            for j in 0..n {
                deflated[(i, j)] -= pair.value * pair.vector[i] * pair.vector[j];
            }
        }
        out.push(pair);
    }
    Ok(out)
}

/// Bottom-`k` eigenpairs of a symmetric positive-semidefinite matrix via a
/// spectral shift: the smallest eigenvalues of `M` are the largest of
/// `sigma I - M`, where `sigma` upper-bounds the spectrum.
///
/// This is exactly what LLE needs (bottom of `(I-W)^T (I-W)`), without any
/// matrix inversion. Results are sorted ascending by eigenvalue.
///
/// # Errors
///
/// Propagates [`top_eigenpairs`] failures.
pub fn smallest_eigenpairs(m: &Matrix, k: usize, seed: u64) -> Result<Vec<EigenPair>, LinalgError> {
    let n = m.rows();
    if m.rows() != m.cols() {
        return Err(LinalgError::NotSquare { shape: m.shape() });
    }
    // Gershgorin bound on the spectral radius.
    let mut sigma = 0.0f64;
    for i in 0..n {
        let row_sum: f64 = (0..n).map(|j| m[(i, j)].abs()).sum();
        sigma = sigma.max(row_sum);
    }
    sigma += 1.0;
    let shifted = Matrix::from_fn(n, n, |i, j| {
        let id = if i == j { sigma } else { 0.0 };
        id - m[(i, j)]
    });
    let mut pairs = top_eigenpairs(&shifted, k, seed)?;
    for p in &mut pairs {
        p.value = sigma - p.value;
    }
    pairs.sort_by(|a, b| a.value.partial_cmp(&b.value).unwrap());
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_eigenpair(a: &Matrix, pair: &EigenPair, tol: f64) {
        let av = a.matvec(&pair.vector).unwrap();
        for (x, v) in av.iter().zip(&pair.vector) {
            assert!(
                (x - pair.value * v).abs() < tol,
                "A v != lambda v: {x} vs {}",
                pair.value * v
            );
        }
    }

    #[test]
    fn jacobi_diagonal_matrix() {
        let a = Matrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ])
        .unwrap();
        let pairs = jacobi_eigen(&a, EigenSort::Descending).unwrap();
        let values: Vec<f64> = pairs.iter().map(|p| p.value).collect();
        assert!((values[0] - 3.0).abs() < 1e-10);
        assert!((values[1] - 2.0).abs() < 1e-10);
        assert!((values[2] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn jacobi_known_2x2() {
        // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let pairs = jacobi_eigen(&a, EigenSort::Ascending).unwrap();
        assert!((pairs[0].value - 1.0).abs() < 1e-10);
        assert!((pairs[1].value - 3.0).abs() < 1e-10);
        for p in &pairs {
            check_eigenpair(&a, p, 1e-9);
        }
    }

    #[test]
    fn jacobi_eigenvectors_orthonormal() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 5.0],
        ])
        .unwrap();
        let pairs = jacobi_eigen(&a, EigenSort::Descending).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let d = crate::vector::dot(&pairs[i].vector, &pairs[j].vector);
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((d - expected).abs() < 1e-8, "dot({i},{j}) = {d}");
            }
        }
    }

    #[test]
    fn jacobi_trace_preserved() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![2.0, 5.0, 1.0],
            vec![3.0, 1.0, 7.0],
        ])
        .unwrap();
        let pairs = jacobi_eigen(&a, EigenSort::Descending).unwrap();
        let sum: f64 = pairs.iter().map(|p| p.value).sum();
        assert!((sum - 13.0).abs() < 1e-9);
    }

    #[test]
    fn jacobi_rejects_asymmetric() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]).unwrap();
        assert!(jacobi_eigen(&a, EigenSort::Descending).is_err());
    }

    #[test]
    fn power_iteration_dominant() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let pair = power_iteration(&a, 1000, 1e-13, 7).unwrap();
        assert!((pair.value - 3.0).abs() < 1e-8);
        check_eigenpair(&a, &pair, 1e-6);
    }

    #[test]
    fn top_eigenpairs_deflation() {
        let a = Matrix::from_rows(&[
            vec![5.0, 0.0, 0.0],
            vec![0.0, 2.0, 0.0],
            vec![0.0, 0.0, -3.0],
        ])
        .unwrap();
        let pairs = top_eigenpairs(&a, 3, 42).unwrap();
        // Sorted by |lambda| descending: 5, -3, 2.
        assert!((pairs[0].value - 5.0).abs() < 1e-7);
        assert!((pairs[1].value + 3.0).abs() < 1e-7);
        assert!((pairs[2].value - 2.0).abs() < 1e-7);
    }

    #[test]
    fn top_eigenpairs_rejects_k_too_large() {
        let a = Matrix::identity(2);
        assert!(top_eigenpairs(&a, 3, 0).is_err());
    }

    #[test]
    fn smallest_eigenpairs_of_psd() {
        // Graph Laplacian of a path on 3 nodes: eigenvalues 0, 1, 3.
        let a = Matrix::from_rows(&[
            vec![1.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 1.0],
        ])
        .unwrap();
        let pairs = smallest_eigenpairs(&a, 2, 3).unwrap();
        assert!(pairs[0].value.abs() < 1e-7);
        assert!((pairs[1].value - 1.0).abs() < 1e-7);
        for p in &pairs {
            check_eigenpair(&a, p, 1e-6);
        }
    }

    #[test]
    fn jacobi_matches_power_iteration_on_random_spd() {
        let mut rng_vals = [0.9, 0.3, -0.2, 0.5, 1.4, -0.7];
        // Deterministic "random" SPD matrix: B^T B + I.
        let b = Matrix::from_fn(3, 3, |i, j| {
            let v = rng_vals[(i * 3 + j) % 6];
            rng_vals[(i + j) % 6] += 0.01;
            v
        });
        let spd = b
            .transpose()
            .matmul(&b)
            .unwrap()
            .add(&Matrix::identity(3))
            .unwrap();
        let jac = jacobi_eigen(&spd, EigenSort::Descending).unwrap();
        let pow = power_iteration(&spd, 5000, 1e-13, 11).unwrap();
        assert!((jac[0].value - pow.value).abs() < 1e-6);
    }
}
