use crate::LinalgError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// This is the workhorse container for the whole suite: network
/// activations, Gram matrices, geodesic distance tables, and embeddings are
/// all `Matrix` values. The representation is a single contiguous `Vec<f64>`
/// so row iteration is cache friendly.
///
/// # Example
///
/// ```
/// use noble_linalg::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidArgument(format!(
                "buffer of length {} cannot form a {rows}x{cols} matrix",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix from row slices. All rows must have equal length.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for zero rows and
    /// [`LinalgError::InvalidArgument`] on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, LinalgError> {
        if rows.is_empty() {
            return Err(LinalgError::Empty);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::InvalidArgument(format!(
                    "row {i} has length {}, expected {cols}",
                    r.len()
                )));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of the backing row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the backing row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.cols()`.
    pub fn column(&self, j: usize) -> Vec<f64> {
        assert!(
            j < self.cols,
            "column index {j} out of bounds ({})",
            self.cols
        );
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// Dispatches on shape: rows with little work use the reference i-k-j
    /// loop ([`crate::matmul_naive`]); heavier rows use the cache-blocked
    /// kernel ([`crate::matmul_blocked`]); and once every worker's share of
    /// the total multiply-accumulate count is large enough the row blocks
    /// are spread over scoped threads ([`crate::matmul_parallel`], worker
    /// count from [`crate::num_threads`]). The kernel class is chosen from
    /// the *per-row* work and each kernel computes rows independently, so
    /// **output row `i` is bit-identical no matter what batch it is
    /// computed in and no matter the thread count** — the invariant the
    /// serving engine's micro-batching relies on. The kernels agree with
    /// each other to floating-point reassociation (≲ 1e-12 relative) and
    /// all follow IEEE semantics — non-finite values propagate, nothing is
    /// skipped as "sparse".
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        crate::gemm::matmul_dispatch(self, rhs)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `self.cols() != v.len()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok(self
            .iter_rows()
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if shapes differ.
    pub fn hadamard(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    fn zip_with(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix, LinalgError> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op,
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns `self * scalar`.
    pub fn scale(&self, scalar: f64) -> Matrix {
        let data = self.data.iter().map(|&a| a * scalar).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        let data = self.data.iter().map(|&a| f(a)).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Frobenius norm (square root of the sum of squared entries).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Per-column means; empty matrix yields an empty vector.
    pub fn column_means(&self) -> Vec<f64> {
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        let mut means = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        let n = self.rows as f64;
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// Extracts the sub-matrix consisting of the given rows (in order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Horizontally concatenates `self` and `rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] unless row counts agree.
    pub fn hstack(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "hstack",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(rhs.row(i));
        }
        Ok(out)
    }

    /// Vertically concatenates `self` and `rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] unless column counts agree.
    pub fn vstack(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "vstack",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&rhs.data);
        Ok(Matrix {
            rows: self.rows + rhs.rows,
            cols: self.cols,
            data,
        })
    }

    /// Maximum absolute difference against another matrix of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if shapes differ.
    pub fn max_abs_diff(&self, rhs: &Matrix) -> Result<f64, LinalgError> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "max_abs_diff",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }

    /// Whether the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for i in 0..show {
            write!(f, "  [")?;
            let cols = self.cols.min(8);
            for j in 0..cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self[(i, j)])?;
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidArgument(_)));
        assert!(matches!(
            Matrix::from_rows(&[]).unwrap_err(),
            LinalgError::Empty
        ));
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_zero_lhs_does_not_mask_nonfinite_rhs() {
        // Regression: matmul used to skip a_ik == 0.0 entries, hiding
        // NaN/inf in the RHS behind sparse LHS rows (0.0 * NaN is NaN).
        let a = Matrix::from_rows(&[vec![0.0, 2.0], vec![0.0, 0.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![f64::NAN, f64::INFINITY], vec![1.0, 2.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert!(c[(0, 0)].is_nan());
        assert!(c[(0, 1)].is_nan(), "0*inf + 2*2 must be NaN, not 4");
        assert!(c[(1, 0)].is_nan());
        assert!(c[(1, 1)].is_nan());
    }

    #[test]
    fn matmul_large_routes_through_blocked_kernel() {
        // Big enough to cross the blocked-dispatch threshold; the result
        // must still match the naive reference.
        let a = Matrix::from_fn(40, 35, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
        let b = Matrix::from_fn(35, 45, |i, j| ((i * 5 + j * 2) % 13) as f64 - 6.0);
        let fast = a.matmul(&b).unwrap();
        let reference = crate::matmul_naive(&a, &b).unwrap();
        assert!(fast.max_abs_diff(&reference).unwrap() < 1e-9);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b).unwrap_err(),
            LinalgError::ShapeMismatch { op: "matmul", .. }
        ));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let v = vec![5.0, 6.0];
        assert_eq!(a.matvec(&v).unwrap(), vec![17.0, 39.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |i, j| (i as f64) * 10.0 + j as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (5, 3));
    }

    #[test]
    fn add_sub_hadamard() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[4.0, 6.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[2.0, 2.0]);
        assert_eq!(a.hadamard(&b).unwrap().as_slice(), &[3.0, 8.0]);
        assert!(a.add(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn scale_and_map() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0]]).unwrap();
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, -4.0]);
        assert_eq!(a.map(f64::abs).as_slice(), &[1.0, 2.0]);
        let mut b = a.clone();
        b.map_in_place(|v| v + 1.0);
        assert_eq!(b.as_slice(), &[2.0, -1.0]);
    }

    #[test]
    fn column_means_and_column() {
        let a = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 20.0]]).unwrap();
        assert_eq!(a.column_means(), vec![2.0, 15.0]);
        assert_eq!(a.column(1), vec![10.0, 20.0]);
    }

    #[test]
    fn select_rows_orders_and_repeats() {
        let a = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let s = a.select_rows(&[2, 0, 2]);
        assert_eq!(s.as_slice(), &[2.0, 0.0, 2.0]);
    }

    #[test]
    fn stack_operations() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![3.0], vec![4.0]]).unwrap();
        let h = a.hstack(&b).unwrap();
        assert_eq!(h.shape(), (2, 2));
        assert_eq!(h.row(0), &[1.0, 3.0]);
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (4, 1));
        assert_eq!(v.column(0), vec![1.0, 2.0, 3.0, 4.0]);
        assert!(a.hstack(&Matrix::zeros(3, 1)).is_err());
        assert!(a.vstack(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 5.0]]).unwrap();
        assert!(s.is_symmetric(1e-12));
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.1, 5.0]]).unwrap();
        assert!(!a.is_symmetric(1e-3));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1e-3));
    }

    #[test]
    fn frobenius_and_sum() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.sum(), 7.0);
    }

    #[test]
    fn debug_is_nonempty() {
        let a = Matrix::zeros(1, 1);
        assert!(!format!("{a:?}").is_empty());
    }

    #[test]
    fn max_abs_diff_basic() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![1.5, 1.0]]).unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 1.0);
    }
}
