//! QR decomposition by Householder reflections, and least squares.
//!
//! Used by the calibration utilities (fitting path-loss parameters from
//! fingerprints) and anywhere an over-determined linear system appears.

use crate::{LinalgError, Matrix};

/// A QR factorization `A = Q R` with `Q` orthonormal `(m, n)` (thin) and
/// `R` upper-triangular `(n, n)`.
#[derive(Debug, Clone)]
pub struct QrFactors {
    /// Thin orthonormal factor.
    pub q: Matrix,
    /// Upper-triangular factor.
    pub r: Matrix,
}

/// Computes the thin QR factorization of a matrix with `rows >= cols`.
///
/// # Errors
///
/// - [`LinalgError::InvalidArgument`] when `rows < cols`.
/// - [`LinalgError::Singular`] when a column is (numerically) linearly
///   dependent.
pub fn qr_decompose(a: &Matrix) -> Result<QrFactors, LinalgError> {
    let (m, n) = a.shape();
    if m < n {
        return Err(LinalgError::InvalidArgument(format!(
            "thin QR needs rows >= cols, got {m}x{n}"
        )));
    }
    // Modified Gram-Schmidt: numerically adequate for the well-conditioned
    // design matrices this crate feeds it, and simple to verify.
    let mut q = a.clone();
    let mut r = Matrix::zeros(n, n);
    for j in 0..n {
        for i in 0..j {
            let mut dot = 0.0;
            for k in 0..m {
                dot += q[(k, i)] * q[(k, j)];
            }
            r[(i, j)] = dot;
            for k in 0..m {
                let v = q[(k, i)];
                q[(k, j)] -= dot * v;
            }
        }
        let mut norm = 0.0;
        for k in 0..m {
            norm += q[(k, j)] * q[(k, j)];
        }
        let norm = norm.sqrt();
        if norm < 1e-12 {
            return Err(LinalgError::Singular { pivot: j });
        }
        r[(j, j)] = norm;
        for k in 0..m {
            q[(k, j)] /= norm;
        }
    }
    Ok(QrFactors { q, r })
}

/// Solves the least-squares problem `min ||A x - b||` via QR.
///
/// # Errors
///
/// Propagates [`qr_decompose`] failures; returns
/// [`LinalgError::ShapeMismatch`] when `b.len() != a.rows()`.
pub fn least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let (m, n) = a.shape();
    if b.len() != m {
        return Err(LinalgError::ShapeMismatch {
            op: "least_squares",
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    let QrFactors { q, r } = qr_decompose(a)?;
    // x = R^{-1} Q^T b  (back substitution).
    let mut qtb = vec![0.0; n];
    for (j, val) in qtb.iter_mut().enumerate() {
        let mut dot = 0.0;
        for k in 0..m {
            dot += q[(k, j)] * b[k];
        }
        *val = dot;
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = qtb[i];
        for j in (i + 1)..n {
            sum -= r[(i, j)] * x[j];
        }
        x[i] = sum / r[(i, i)];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_reconstructs_input() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let f = qr_decompose(&a).unwrap();
        let recon = f.q.matmul(&f.r).unwrap();
        assert!(recon.max_abs_diff(&a).unwrap() < 1e-10);
    }

    #[test]
    fn q_columns_orthonormal() {
        let a = Matrix::from_rows(&[
            vec![2.0, -1.0, 0.5],
            vec![0.0, 3.0, 1.0],
            vec![1.0, 1.0, -2.0],
            vec![4.0, 0.0, 0.0],
        ])
        .unwrap();
        let f = qr_decompose(&a).unwrap();
        let qtq = f.q.transpose().matmul(&f.q).unwrap();
        assert!(qtq.max_abs_diff(&Matrix::identity(3)).unwrap() < 1e-10);
    }

    #[test]
    fn r_is_upper_triangular_with_positive_diagonal() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 2.0], vec![1.0, 3.0]]).unwrap();
        let f = qr_decompose(&a).unwrap();
        assert_eq!(f.r[(1, 0)], 0.0);
        assert!(f.r[(0, 0)] > 0.0 && f.r[(1, 1)] > 0.0);
    }

    #[test]
    fn rejects_wide_and_rank_deficient() {
        assert!(qr_decompose(&Matrix::zeros(2, 3)).is_err());
        let dependent =
            Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        assert!(matches!(
            qr_decompose(&dependent).unwrap_err(),
            LinalgError::Singular { .. }
        ));
    }

    #[test]
    fn least_squares_fits_line() {
        // y = 2x + 1 with symmetric noise: exact recovery of slope and
        // intercept because the noise cancels by construction.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let noise = [0.1, -0.1, 0.1, -0.1];
        let a = Matrix::from_fn(4, 2, |i, j| if j == 0 { xs[i] } else { 1.0 });
        let b: Vec<f64> = xs
            .iter()
            .zip(&noise)
            .map(|(x, n)| 2.0 * x + 1.0 + n)
            .collect();
        let coef = least_squares(&a, &b).unwrap();
        assert!((coef[0] - 1.96).abs() < 0.1, "slope {}", coef[0]);
        assert!((coef[1] - 1.0).abs() < 0.25, "intercept {}", coef[1]);
    }

    #[test]
    fn least_squares_exact_for_square_system() {
        let a = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 4.0]]).unwrap();
        let x = least_squares(&a, &[6.0, 8.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
        assert!(least_squares(&a, &[1.0]).is_err());
    }

    #[test]
    fn least_squares_residual_orthogonal_to_columns() {
        let a = Matrix::from_rows(&[
            vec![1.0, 0.5],
            vec![1.0, 1.5],
            vec![1.0, 2.5],
            vec![1.0, 3.5],
        ])
        .unwrap();
        let b = [1.0, 2.2, 2.8, 4.1];
        let x = least_squares(&a, &b).unwrap();
        let fitted = a.matvec(&x).unwrap();
        let residual: Vec<f64> = b.iter().zip(&fitted).map(|(bb, f)| bb - f).collect();
        // Normal equations: A^T r = 0.
        for j in 0..2 {
            let dot: f64 = (0..4).map(|i| a[(i, j)] * residual[i]).sum();
            assert!(dot.abs() < 1e-10, "column {j} correlation {dot}");
        }
    }
}
