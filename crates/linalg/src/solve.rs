//! Direct solvers: LU with partial pivoting and Cholesky.
//!
//! LLE's local-weight computation solves many small regularized Gram
//! systems; the kernel-regression utilities and Nyström out-of-sample
//! extension also need dense solves. Both factorizations live here.

use crate::{LinalgError, Matrix};

/// An LU factorization with partial pivoting: `P * A = L * U`.
///
/// Produced by [`lu_decompose`]; consumed by [`lu_solve`]. Exposing the
/// factorization lets callers solve against many right-hand sides without
/// refactorizing (API-guidelines C-INTERMEDIATE).
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Combined L (below diagonal, unit diagonal implied) and U (upper).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row index now at row `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 / -1.0); exposed for determinants.
    sign: f64,
}

impl LuFactors {
    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.sign;
        for i in 0..self.dim() {
            det *= self.lu[(i, i)];
        }
        det
    }
}

/// Computes the LU factorization of a square matrix with partial pivoting.
///
/// # Errors
///
/// - [`LinalgError::NotSquare`] for non-square input.
/// - [`LinalgError::Singular`] when a pivot collapses below `1e-12`.
pub fn lu_decompose(a: &Matrix) -> Result<LuFactors, LinalgError> {
    let n = a.rows();
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut sign = 1.0;

    for k in 0..n {
        // Partial pivot: find the largest |entry| in column k at or below row k.
        let mut pivot_row = k;
        let mut pivot_val = lu[(k, k)].abs();
        for i in (k + 1)..n {
            let v = lu[(i, k)].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = i;
            }
        }
        if pivot_val < 1e-12 {
            return Err(LinalgError::Singular { pivot: k });
        }
        if pivot_row != k {
            for j in 0..n {
                let tmp = lu[(k, j)];
                lu[(k, j)] = lu[(pivot_row, j)];
                lu[(pivot_row, j)] = tmp;
            }
            perm.swap(k, pivot_row);
            sign = -sign;
        }
        let pivot = lu[(k, k)];
        for i in (k + 1)..n {
            let factor = lu[(i, k)] / pivot;
            lu[(i, k)] = factor;
            for j in (k + 1)..n {
                let u_kj = lu[(k, j)];
                lu[(i, j)] -= factor * u_kj;
            }
        }
    }
    Ok(LuFactors { lu, perm, sign })
}

/// Solves `A x = b` given a precomputed factorization of `A`.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] when `b.len()` differs from the
/// factored dimension.
pub fn lu_solve(factors: &LuFactors, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = factors.dim();
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "lu_solve",
            lhs: (n, n),
            rhs: (b.len(), 1),
        });
    }
    // Apply permutation, then forward-substitute L, then back-substitute U.
    let mut x: Vec<f64> = factors.perm.iter().map(|&p| b[p]).collect();
    for i in 1..n {
        let mut sum = x[i];
        for (j, &xj) in x.iter().enumerate().take(i) {
            sum -= factors.lu[(i, j)] * xj;
        }
        x[i] = sum;
    }
    for i in (0..n).rev() {
        let mut sum = x[i];
        for (j, &xj) in x.iter().enumerate().skip(i + 1) {
            sum -= factors.lu[(i, j)] * xj;
        }
        x[i] = sum / factors.lu[(i, i)];
    }
    Ok(x)
}

/// One-shot convenience: factorize `a` and solve `a x = b`.
///
/// # Errors
///
/// Propagates errors from [`lu_decompose`] and [`lu_solve`].
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let f = lu_decompose(a)?;
    lu_solve(&f, b)
}

/// Cholesky factorization `A = L L^T` of a symmetric positive-definite
/// matrix. Returns the lower-triangular factor `L`.
///
/// # Errors
///
/// - [`LinalgError::NotSquare`] for non-square input.
/// - [`LinalgError::Singular`] when the matrix is not positive definite.
pub fn cholesky(a: &Matrix) -> Result<Matrix, LinalgError> {
    let n = a.rows();
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(LinalgError::Singular { pivot: i });
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
///
/// # Errors
///
/// Propagates [`cholesky`] failures; returns
/// [`LinalgError::ShapeMismatch`] when `b.len()` differs from `a.rows()`.
pub fn solve_cholesky(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let n = a.rows();
    if b.len() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "solve_cholesky",
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    let l = cholesky(a)?;
    // Forward: L y = b
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for j in 0..i {
            sum -= l[(i, j)] * y[j];
        }
        y[i] = sum / l[(i, i)];
    }
    // Backward: L^T x = y
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for j in (i + 1)..n {
            sum -= l[(j, i)] * x[j];
        }
        x[i] = sum / l[(i, i)];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x).unwrap();
        ax.iter()
            .zip(b)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn lu_solves_small_system() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ])
        .unwrap();
        let b = vec![8.0, -11.0, -3.0];
        let x = solve(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
        assert!((x[2] + 1.0).abs() < 1e-10);
    }

    #[test]
    fn lu_requires_pivoting() {
        // Zero on the leading diagonal forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = solve(&a, &[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lu_detects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(
            lu_decompose(&a).unwrap_err(),
            LinalgError::Singular { .. }
        ));
    }

    #[test]
    fn lu_rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            lu_decompose(&a).unwrap_err(),
            LinalgError::NotSquare { .. }
        ));
    }

    #[test]
    fn determinant_via_lu() {
        let a = Matrix::from_rows(&[vec![3.0, 8.0], vec![4.0, 6.0]]).unwrap();
        let f = lu_decompose(&a).unwrap();
        assert!((f.determinant() + 14.0).abs() < 1e-10);
    }

    #[test]
    fn lu_reuse_for_multiple_rhs() {
        let a = Matrix::from_rows(&[vec![4.0, 3.0], vec![6.0, 3.0]]).unwrap();
        let f = lu_decompose(&a).unwrap();
        for b in [[1.0, 0.0], [0.0, 1.0], [5.0, -2.0]] {
            let x = lu_solve(&f, &b).unwrap();
            assert!(residual(&a, &x, &b) < 1e-10);
        }
    }

    #[test]
    fn lu_solve_rejects_bad_rhs() {
        let a = Matrix::identity(2);
        let f = lu_decompose(&a).unwrap();
        assert!(lu_solve(&f, &[1.0]).is_err());
    }

    #[test]
    fn cholesky_recovers_spd() {
        let a = Matrix::from_rows(&[
            vec![4.0, 12.0, -16.0],
            vec![12.0, 37.0, -43.0],
            vec![-16.0, -43.0, 98.0],
        ])
        .unwrap();
        let l = cholesky(&a).unwrap();
        let recon = l.matmul(&l.transpose()).unwrap();
        assert!(recon.max_abs_diff(&a).unwrap() < 1e-10);
        // Known factor for this classic example.
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 6.0).abs() < 1e-12);
        assert!((l[(2, 2)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(matches!(
            cholesky(&a).unwrap_err(),
            LinalgError::Singular { .. }
        ));
    }

    #[test]
    fn solve_cholesky_agrees_with_lu() {
        let a = Matrix::from_rows(&[vec![6.0, 2.0], vec![2.0, 5.0]]).unwrap();
        let b = vec![4.0, 3.0];
        let x1 = solve(&a, &b).unwrap();
        let x2 = solve_cholesky(&a, &b).unwrap();
        for (p, q) in x1.iter().zip(&x2) {
            assert!((p - q).abs() < 1e-10);
        }
        assert!(solve_cholesky(&a, &[1.0]).is_err());
    }
}
