//! Double centering: the bridge from distance matrices to Gram matrices.
//!
//! Classical multidimensional scaling (and therefore Isomap) turns a matrix
//! of squared pairwise distances `D2` into the Gram matrix
//! `B = -1/2 * J D2 J` with `J = I - (1/n) 1 1^T`, whose top eigenvectors give
//! the embedding.

use crate::threads::{num_threads, parallel_chunks_mut, parallel_map_ranges};
use crate::{LinalgError, Matrix};

/// Row/column count above which the `O(n^2)` centering passes fan out
/// over scoped threads (small matrices stay serial; this was the last
/// serial hotspot in the manifold baselines' Gram assembly).
const PARALLEL_CENTER_MIN_ROWS: usize = 64;

/// Applies double centering to a square matrix: `B = -1/2 * J A J`.
///
/// Above a small size threshold the three `O(n^2)` passes (row means,
/// column means, output assembly) run on scoped worker threads. Every
/// entry of the result is bit-identical to the serial path regardless of
/// thread count: row means are summed within one worker per row, column
/// means within one worker per column (serial row order), and each
/// output entry is a pure function of those means.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for non-square input and
/// [`LinalgError::Empty`] for an empty matrix.
pub fn double_center(a: &Matrix) -> Result<Matrix, LinalgError> {
    let n = a.rows();
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    let threads = if n >= PARALLEL_CENTER_MIN_ROWS {
        num_threads()
    } else {
        1
    };
    // Each row's mean is computed wholly inside one worker, left to
    // right — the same association as the serial loop.
    let row_means: Vec<f64> = parallel_map_ranges(n, threads, |range| {
        range
            .map(|i| a.row(i).iter().sum::<f64>() / n as f64)
            .collect::<Vec<f64>>()
    })
    .into_iter()
    .flatten()
    .collect();
    // Column ranges per worker; within a column the rows are scanned in
    // serial order, so the sum association never changes. The strided
    // reads cost cache locality but keep the pass bit-stable.
    let col_means: Vec<f64> = parallel_map_ranges(n, threads, |range| {
        range
            .map(|j| (0..n).map(|i| a[(i, j)]).sum::<f64>() / n as f64)
            .collect::<Vec<f64>>()
    })
    .into_iter()
    .flatten()
    .collect();
    let grand = row_means.iter().sum::<f64>() / n as f64;
    let mut out = Matrix::zeros(n, n);
    parallel_chunks_mut(out.as_mut_slice(), n, threads, |i, row| {
        let a_row = a.row(i);
        let rm = row_means[i];
        for (j, slot) in row.iter_mut().enumerate() {
            *slot = -0.5 * (a_row[j] - rm - col_means[j] + grand);
        }
    });
    Ok(out)
}

/// Converts a matrix of *plain* (not squared) pairwise distances into the
/// double-centered Gram matrix used by classical MDS. The squaring pass
/// parallelizes with the centering passes (entries are independent, so
/// the result is bit-identical at any thread count).
///
/// # Errors
///
/// Propagates [`double_center`] failures.
pub fn gram_from_distances(d: &Matrix) -> Result<Matrix, LinalgError> {
    let n = d.rows();
    let threads = if n >= PARALLEL_CENTER_MIN_ROWS {
        num_threads()
    } else {
        1
    };
    let mut squared = Matrix::zeros(n, d.cols());
    parallel_chunks_mut(
        squared.as_mut_slice(),
        d.cols().max(1),
        threads,
        |i, row| {
            let src = d.row(i);
            for (slot, &v) in row.iter_mut().zip(src) {
                *slot = v * v;
            }
        },
    );
    double_center(&squared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::euclidean_distance;

    #[test]
    fn centering_zeroes_row_and_column_sums() {
        let a = Matrix::from_rows(&[
            vec![0.0, 1.0, 4.0],
            vec![1.0, 0.0, 1.0],
            vec![4.0, 1.0, 0.0],
        ])
        .unwrap();
        let b = double_center(&a).unwrap();
        for i in 0..3 {
            let row_sum: f64 = b.row(i).iter().sum();
            assert!(row_sum.abs() < 1e-10, "row {i} sum {row_sum}");
            let col_sum: f64 = (0..3).map(|r| b[(r, i)]).sum();
            assert!(col_sum.abs() < 1e-10, "col {i} sum {col_sum}");
        }
    }

    #[test]
    fn gram_recovers_inner_products_of_centered_points() {
        // Points on a line: 0, 1, 3. Centered: -4/3, -1/3, 5/3.
        let pts = [vec![0.0], vec![1.0], vec![3.0]];
        let d = Matrix::from_fn(3, 3, |i, j| euclidean_distance(&pts[i], &pts[j]));
        let b = gram_from_distances(&d).unwrap();
        let centered = [-4.0 / 3.0, -1.0 / 3.0, 5.0 / 3.0];
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (b[(i, j)] - centered[i] * centered[j]).abs() < 1e-10,
                    "B[{i}{j}]"
                );
            }
        }
    }

    #[test]
    fn rejects_non_square() {
        assert!(double_center(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn parallel_centering_bit_identical_to_serial() {
        let _guard = crate::threads::TEST_THREAD_LOCK.lock().unwrap();
        // Big enough to cross PARALLEL_CENTER_MIN_ROWS, asymmetric values
        // so row means != col means.
        let n = 96;
        let a = Matrix::from_fn(n, n, |i, j| {
            ((i * 31 + j * 17) % 101) as f64 / 9.0 - (i as f64) / 50.0
        });
        // Literal serial reference (the pre-parallel formula).
        let row_means: Vec<f64> = (0..n)
            .map(|i| a.row(i).iter().sum::<f64>() / n as f64)
            .collect();
        let col_means: Vec<f64> = (0..n)
            .map(|j| (0..n).map(|i| a[(i, j)]).sum::<f64>() / n as f64)
            .collect();
        let grand = row_means.iter().sum::<f64>() / n as f64;
        let reference = Matrix::from_fn(n, n, |i, j| {
            -0.5 * (a[(i, j)] - row_means[i] - col_means[j] + grand)
        });
        for threads in [1, 2, 4] {
            crate::threads::set_num_threads(threads);
            let got = double_center(&a).unwrap();
            assert_eq!(
                got, reference,
                "double_center diverged at threads={threads}"
            );
            let gram = gram_from_distances(&a).unwrap();
            crate::threads::set_num_threads(1);
            let gram_serial = gram_from_distances(&a).unwrap();
            assert_eq!(
                gram, gram_serial,
                "gram_from_distances diverged at threads={threads}"
            );
        }
        crate::threads::set_num_threads(0);
    }

    #[test]
    fn gram_is_symmetric() {
        let d = Matrix::from_rows(&[
            vec![0.0, 2.0, 3.0],
            vec![2.0, 0.0, 1.5],
            vec![3.0, 1.5, 0.0],
        ])
        .unwrap();
        let b = gram_from_distances(&d).unwrap();
        assert!(b.is_symmetric(1e-12));
    }
}
