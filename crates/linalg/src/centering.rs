//! Double centering: the bridge from distance matrices to Gram matrices.
//!
//! Classical multidimensional scaling (and therefore Isomap) turns a matrix
//! of squared pairwise distances `D2` into the Gram matrix
//! `B = -1/2 * J D2 J` with `J = I - (1/n) 1 1^T`, whose top eigenvectors give
//! the embedding.

use crate::{LinalgError, Matrix};

/// Applies double centering to a square matrix: `B = -1/2 * J A J`.
///
/// # Errors
///
/// Returns [`LinalgError::NotSquare`] for non-square input and
/// [`LinalgError::Empty`] for an empty matrix.
pub fn double_center(a: &Matrix) -> Result<Matrix, LinalgError> {
    let n = a.rows();
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    let row_means: Vec<f64> = (0..n)
        .map(|i| a.row(i).iter().sum::<f64>() / n as f64)
        .collect();
    let col_means: Vec<f64> = (0..n)
        .map(|j| (0..n).map(|i| a[(i, j)]).sum::<f64>() / n as f64)
        .collect();
    let grand = row_means.iter().sum::<f64>() / n as f64;
    Ok(Matrix::from_fn(n, n, |i, j| {
        -0.5 * (a[(i, j)] - row_means[i] - col_means[j] + grand)
    }))
}

/// Converts a matrix of *plain* (not squared) pairwise distances into the
/// double-centered Gram matrix used by classical MDS.
///
/// # Errors
///
/// Propagates [`double_center`] failures.
pub fn gram_from_distances(d: &Matrix) -> Result<Matrix, LinalgError> {
    let squared = d.map(|v| v * v);
    double_center(&squared)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::euclidean_distance;

    #[test]
    fn centering_zeroes_row_and_column_sums() {
        let a = Matrix::from_rows(&[
            vec![0.0, 1.0, 4.0],
            vec![1.0, 0.0, 1.0],
            vec![4.0, 1.0, 0.0],
        ])
        .unwrap();
        let b = double_center(&a).unwrap();
        for i in 0..3 {
            let row_sum: f64 = b.row(i).iter().sum();
            assert!(row_sum.abs() < 1e-10, "row {i} sum {row_sum}");
            let col_sum: f64 = (0..3).map(|r| b[(r, i)]).sum();
            assert!(col_sum.abs() < 1e-10, "col {i} sum {col_sum}");
        }
    }

    #[test]
    fn gram_recovers_inner_products_of_centered_points() {
        // Points on a line: 0, 1, 3. Centered: -4/3, -1/3, 5/3.
        let pts = [vec![0.0], vec![1.0], vec![3.0]];
        let d = Matrix::from_fn(3, 3, |i, j| euclidean_distance(&pts[i], &pts[j]));
        let b = gram_from_distances(&d).unwrap();
        let centered = [-4.0 / 3.0, -1.0 / 3.0, 5.0 / 3.0];
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (b[(i, j)] - centered[i] * centered[j]).abs() < 1e-10,
                    "B[{i}{j}]"
                );
            }
        }
    }

    #[test]
    fn rejects_non_square() {
        assert!(double_center(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn gram_is_symmetric() {
        let d = Matrix::from_rows(&[
            vec![0.0, 2.0, 3.0],
            vec![2.0, 0.0, 1.5],
            vec![3.0, 1.5, 0.0],
        ])
        .unwrap();
        let b = gram_from_distances(&d).unwrap();
        assert!(b.is_symmetric(1e-12));
    }
}
