//! Reduced-precision kernels: the f32 gemm family and the int8
//! row-quantized matmul behind the serving fast path (ROADMAP "f32 /
//! quantized / SIMD inference fast path").
//!
//! The f64 kernels in [`crate::gemm`] stay the bit-exact reference; this
//! module is the *accuracy-gated* tier layered on top of it. Its
//! determinism contract is deliberately weaker in one axis and just as
//! strong in the others:
//!
//! - **vs f64**: approximate. f32 products agree with the f64 reference
//!   to f32 rounding; int8 products agree to the quantization grid. The
//!   gates live upstream (parity-at-tolerance suites, the accuracy-delta
//!   checks in `exp_throughput`/`exp_serving`).
//! - **vs itself**: exact. Every kernel here is bit-stable across thread
//!   counts and batch shapes, by the same construction the f64 family
//!   uses — the parallel variants deal *whole output rows* to workers
//!   running the identical serial kernel, the serial kernels use
//!   fixed-width accumulator blocking (never length-dependent
//!   reassociation), and the dispatcher picks the kernel class from
//!   per-row work only. Int8 goes further: i32 accumulation is exact
//!   integer arithmetic, so its sums are associative and any split
//!   yields the same bits.
//!
//! This file is carved out of the `float-determinism` lint scope by
//! `noble-lint.toml` — `as f32` narrowing is this module's entire job,
//! sanctioned as a path-scoped policy rather than scattered line allows.

use crate::gemm::{BLOCKED_MIN_ROW_FLOPS, PARALLEL_MIN_CHUNK_FLOPS};
use crate::threads::{num_threads, parallel_chunks_mut};
use crate::{LinalgError, Matrix};

/// Depth handled per cache block (mirrors the f64 kernel's `BLOCK_K`).
const BLOCK_K: usize = 128;
/// Output columns handled per cache block.
const BLOCK_COLS: usize = 256;

/// A row-major single-precision matrix: the storage type of the f32
/// inference tier.
///
/// Deliberately minimal — just what the lowered forward pass needs. The
/// f64 [`Matrix`] remains the API for everything exact.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixF32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl MatrixF32 {
    /// An all-zeros matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> MatrixF32 {
        MatrixF32 {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a row-major buffer.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<MatrixF32, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                op: "from_vec_f32",
                lhs: (rows, cols),
                rhs: (data.len(), 1),
            });
        }
        Ok(MatrixF32 { rows, cols, data })
    }

    /// Rounds an f64 matrix to single precision (the lowering cast).
    #[must_use]
    pub fn from_f64(m: &Matrix) -> MatrixF32 {
        MatrixF32 {
            rows: m.rows(),
            cols: m.cols(),
            data: m.as_slice().iter().map(|&v| v as f32).collect(),
        }
    }

    /// Widens back to f64 (exact — every f32 is representable in f64).
    ///
    /// # Panics
    ///
    /// Never: the buffer length matches the shape by construction.
    #[must_use]
    pub fn to_f64(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&v| f64::from(v)).collect(),
        )
        .expect("shape and buffer agree by construction")
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// When `i` is out of range.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    ///
    /// # Panics
    ///
    /// When `i` is out of range.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The whole row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The whole row-major buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Rows-of-columns transpose.
    #[must_use]
    pub fn transpose(&self) -> MatrixF32 {
        let mut out = MatrixF32::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }
}

fn check_shapes_f32(
    op: &'static str,
    a: &MatrixF32,
    b_shape: (usize, usize),
) -> Result<(), LinalgError> {
    if a.cols != b_shape.0 {
        return Err(LinalgError::ShapeMismatch {
            op,
            lhs: a.shape(),
            rhs: b_shape,
        });
    }
    Ok(())
}

/// Reference f32 kernel: the cache-friendly i-k-j triple loop.
///
/// The semantic baseline the blocked and threaded f32 kernels are
/// property-tested against (to f32 reassociation tolerance), exactly as
/// [`crate::matmul_naive`] anchors the f64 family.
///
/// # Errors
///
/// [`LinalgError::ShapeMismatch`] when `a.cols() != b.rows()`.
pub fn matmul_f32_naive(a: &MatrixF32, b: &MatrixF32) -> Result<MatrixF32, LinalgError> {
    check_shapes_f32("matmul_f32", a, b.shape())?;
    let n = b.cols;
    let mut out = MatrixF32::zeros(a.rows, n);
    for i in 0..a.rows {
        let a_row = a.row(i);
        let out_row = &mut out.data[i * n..(i + 1) * n];
        for (k, &a_ik) in a_row.iter().enumerate() {
            let b_row = &b.data[k * n..(k + 1) * n];
            for (o, &b_kj) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ik * b_kj;
            }
        }
    }
    Ok(out)
}

/// Computes output rows `first_row..` of `a * b` into `out_chunk` (whole
/// output rows), blocked over depth and output columns — the f32 mirror
/// of the f64 `gemm_rows`.
///
/// The micro-kernel is the same k-unrolled-by-4 streaming axpy: the
/// accumulator grouping is fixed-width (fours over depth), never derived
/// from the slice length, so the summation tree — and hence the bits —
/// is identical whether a row is computed alone, in a batch, or on any
/// worker thread.
fn gemm_rows_f32(a: &MatrixF32, b: &MatrixF32, first_row: usize, out_chunk: &mut [f32]) {
    let (k, n) = (b.rows, b.cols);
    if n == 0 || out_chunk.is_empty() {
        return;
    }
    let chunk_rows = out_chunk.len() / n;
    let bs = &b.data[..];
    for k0 in (0..k).step_by(BLOCK_K) {
        let k_hi = (k0 + BLOCK_K).min(k);
        let k4 = k0 + (k_hi - k0) / 4 * 4;
        for j0 in (0..n).step_by(BLOCK_COLS) {
            let j_hi = (j0 + BLOCK_COLS).min(n);
            // Rows go in pairs so each streamed b row is loaded once per
            // two output rows instead of once per row (the kernel is
            // load-port-bound). Every row's per-element expression — and
            // therefore its bits — is identical to the lone-row path
            // below, so batch-shape invariance is preserved.
            let mut i = 0;
            while i + 1 < chunk_rows {
                let ar0 = a.row(first_row + i);
                let ar1 = a.row(first_row + i + 1);
                let (head, tail) = out_chunk.split_at_mut((i + 1) * n);
                let out0 = &mut head[i * n + j0..i * n + j_hi];
                let out1 = &mut tail[j0..j_hi];
                let mut kk = k0;
                while kk < k4 {
                    let (a00, a01, a02, a03) = (ar0[kk], ar0[kk + 1], ar0[kk + 2], ar0[kk + 3]);
                    let (a10, a11, a12, a13) = (ar1[kk], ar1[kk + 1], ar1[kk + 2], ar1[kk + 3]);
                    let b0 = &bs[kk * n + j0..kk * n + j_hi];
                    let b1 = &bs[(kk + 1) * n + j0..(kk + 1) * n + j_hi];
                    let b2 = &bs[(kk + 2) * n + j0..(kk + 2) * n + j_hi];
                    let b3 = &bs[(kk + 3) * n + j0..(kk + 3) * n + j_hi];
                    for (j, o) in out0.iter_mut().enumerate() {
                        *o += a00 * b0[j] + a01 * b1[j] + a02 * b2[j] + a03 * b3[j];
                        out1[j] += a10 * b0[j] + a11 * b1[j] + a12 * b2[j] + a13 * b3[j];
                    }
                    kk += 4;
                }
                for kr in k4..k_hi {
                    let (a0k, a1k) = (ar0[kr], ar1[kr]);
                    let b_row = &bs[kr * n + j0..kr * n + j_hi];
                    for (j, o) in out0.iter_mut().enumerate() {
                        *o += a0k * b_row[j];
                        out1[j] += a1k * b_row[j];
                    }
                }
                i += 2;
            }
            if i < chunk_rows {
                let a_row = a.row(first_row + i);
                let out_seg = &mut out_chunk[i * n + j0..i * n + j_hi];
                let mut kk = k0;
                while kk < k4 {
                    let (a0, a1, a2, a3) = (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
                    let b0 = &bs[kk * n + j0..kk * n + j_hi];
                    let b1 = &bs[(kk + 1) * n + j0..(kk + 1) * n + j_hi];
                    let b2 = &bs[(kk + 2) * n + j0..(kk + 2) * n + j_hi];
                    let b3 = &bs[(kk + 3) * n + j0..(kk + 3) * n + j_hi];
                    for (j, o) in out_seg.iter_mut().enumerate() {
                        *o += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
                    }
                    kk += 4;
                }
                for kr in k4..k_hi {
                    let a_ik = a_row[kr];
                    let b_row = &bs[kr * n + j0..kr * n + j_hi];
                    for (o, &b_kj) in out_seg.iter_mut().zip(b_row) {
                        *o += a_ik * b_kj;
                    }
                }
            }
        }
    }
}

/// Cache-blocked f32 product `a * b`.
///
/// Matches [`matmul_f32_naive`] to f32 reassociation (the micro-kernel
/// groups the depth sum in fours) and is the bit-reference for
/// [`matmul_f32_parallel`].
///
/// # Errors
///
/// [`LinalgError::ShapeMismatch`] when `a.cols() != b.rows()`.
pub fn matmul_f32_blocked(a: &MatrixF32, b: &MatrixF32) -> Result<MatrixF32, LinalgError> {
    check_shapes_f32("matmul_f32", a, b.shape())?;
    let mut out = MatrixF32::zeros(a.rows, b.cols);
    gemm_rows_f32(a, b, 0, &mut out.data);
    Ok(out)
}

/// Multi-threaded blocked f32 product `a * b`.
///
/// Each worker writes a disjoint slab of whole output rows with the
/// identical serial kernel, so results are bit-identical to
/// [`matmul_f32_blocked`] regardless of `threads`.
///
/// # Errors
///
/// [`LinalgError::ShapeMismatch`] when `a.cols() != b.rows()`.
pub fn matmul_f32_parallel(
    a: &MatrixF32,
    b: &MatrixF32,
    threads: usize,
) -> Result<MatrixF32, LinalgError> {
    check_shapes_f32("matmul_f32", a, b.shape())?;
    let (m, n) = (a.rows, b.cols);
    let mut out = MatrixF32::zeros(m, n);
    if m == 0 || n == 0 {
        return Ok(out);
    }
    let rows_per_chunk = m.div_ceil(threads.max(1)).max(1);
    parallel_chunks_mut(
        &mut out.data,
        rows_per_chunk * n,
        threads,
        |chunk_index, chunk| {
            gemm_rows_f32(a, b, chunk_index * rows_per_chunk, chunk);
        },
    );
    Ok(out)
}

/// Dispatches the f32 product `a * b` to the cheapest kernel for its
/// shape, with the same row-wise invariance contract as the f64
/// dispatcher: the serial kernel class depends only on the per-row work
/// `k * n`, and the threaded variant is bit-identical to blocked, so
/// every output row is bit-identical regardless of batch size and
/// thread count.
///
/// # Errors
///
/// [`LinalgError::ShapeMismatch`] when `a.cols() != b.rows()`.
pub fn matmul_f32(a: &MatrixF32, b: &MatrixF32) -> Result<MatrixF32, LinalgError> {
    let row_flops = a.cols * b.cols;
    if row_flops < BLOCKED_MIN_ROW_FLOPS {
        return matmul_f32_naive(a, b);
    }
    let threads = num_threads();
    if threads > 1 && a.rows > 1 {
        let flops = a.rows * row_flops;
        let workers = threads.min(flops / PARALLEL_MIN_CHUNK_FLOPS).min(a.rows);
        if workers > 1 {
            return matmul_f32_parallel(a, b, workers);
        }
    }
    matmul_f32_blocked(a, b)
}

/// A per-row affine-quantized int8 matrix (TFLite-style asymmetric
/// scheme): row `i` stores `q` such that `x ≈ scale[i] * (q - zero[i])`.
///
/// The quantization range of every row is widened to include 0, so
/// exact zeros (padding slots, one-hot gaps) survive the round trip
/// exactly — the same concern that drives `noble-quantize`'s grid
/// anchoring.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMatrixI8 {
    rows: usize,
    cols: usize,
    data: Vec<i8>,
    scales: Vec<f32>,
    zeros: Vec<i32>,
    /// Per-row sums of the raw codes, precomputed so the affine
    /// cross-terms of the quantized product cost O(1) per output.
    row_sums: Vec<i32>,
}

impl QuantizedMatrixI8 {
    /// Quantizes each row of `m` to int8 with its own scale/zero-point.
    #[must_use]
    pub fn quantize(m: &MatrixF32) -> QuantizedMatrixI8 {
        let (rows, cols) = m.shape();
        let mut data = vec![0i8; rows * cols];
        let mut scales = vec![1.0f32; rows];
        let mut zeros = vec![0i32; rows];
        let mut row_sums = vec![0i32; rows];
        for i in 0..rows {
            let row = m.row(i);
            // Widen the range to include 0 so it is exactly representable.
            let mut lo = 0.0f32;
            let mut hi = 0.0f32;
            for &v in row {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let scale = ((hi - lo) / 255.0).max(f32::MIN_POSITIVE);
            // Map `lo` to -128; 0 then lands on an exact integer code.
            let zero = (-128.0 - lo / scale).round() as i32;
            let out = &mut data[i * cols..(i + 1) * cols];
            let mut sum = 0i32;
            for (o, &v) in out.iter_mut().zip(row) {
                let q = ((v / scale).round() as i32 + zero).clamp(-128, 127);
                *o = q as i8;
                sum += q;
            }
            scales[i] = scale;
            zeros[i] = zero;
            row_sums[i] = sum;
        }
        QuantizedMatrixI8 {
            rows,
            cols,
            data,
            scales,
            zeros,
            row_sums,
        }
    }

    /// Quantizes an f64 matrix (rounds through f32 first).
    #[must_use]
    pub fn quantize_f64(m: &Matrix) -> QuantizedMatrixI8 {
        QuantizedMatrixI8::quantize(&MatrixF32::from_f64(m))
    }

    /// Dequantizes back to f32 (for tests and round-trip bounds).
    #[must_use]
    pub fn dequantize(&self) -> MatrixF32 {
        let mut out = MatrixF32::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let scale = self.scales[i];
            let zero = self.zeros[i];
            let src = &self.data[i * self.cols..(i + 1) * self.cols];
            for (o, &q) in out.row_mut(i).iter_mut().zip(src) {
                *o = scale * (i32::from(q) - zero) as f32;
            }
        }
        out
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The worst-case absolute round-trip error of row `i` (half a
    /// quantization step).
    #[must_use]
    pub fn row_step(&self, i: usize) -> f32 {
        self.scales[i]
    }
}

/// Computes output rows `first_row..` of the quantized product into
/// `out_chunk`. Whole-row deal + exact integer accumulation ⇒ any
/// thread split is bit-identical.
fn quantized_rows(
    a: &QuantizedMatrixI8,
    w_t: &QuantizedMatrixI8,
    first_row: usize,
    out_chunk: &mut [f32],
) {
    let k = a.cols;
    let n = w_t.rows;
    if n == 0 || out_chunk.is_empty() {
        return;
    }
    let chunk_rows = out_chunk.len() / n;
    let k_i32 = k as i32;
    // Pre-widen both operands to i16: `i32·i32` products of sign-extended
    // i8 loads stay scalar at the baseline target, but the i16 form is
    // the `pmaddwd` idiom LLVM's reduction vectorizer recognizes (8
    // multiply-accumulates per instruction). Weights widen once per
    // chunk (amortized over every row the worker owns), activations once
    // per row. Integer adds are exact, so reassociation by the
    // vectorizer cannot change the result.
    let w_wide: Vec<i16> = w_t.data.iter().map(|&v| i16::from(v)).collect();
    let mut a_wide: Vec<i16> = vec![0; k];
    for i in 0..chunk_rows {
        let ai = first_row + i;
        let a_row = &a.data[ai * k..(ai + 1) * k];
        for (wide, &q) in a_wide.iter_mut().zip(a_row) {
            *wide = i16::from(q);
        }
        let (za, sa) = (a.zeros[ai], a.scales[ai]);
        let a_sum = a.row_sums[ai];
        let out_row = &mut out_chunk[i * n..(i + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let w_row = &w_wide[j * k..(j + 1) * k];
            let dot: i32 = a_wide
                .iter()
                .zip(w_row)
                .map(|(&qa, &qw)| i32::from(qa) * i32::from(qw))
                .sum();
            // Σ (qa - za)(qw - zw) = Σ qa·qw - zw Σ qa - za Σ qw + k·za·zw
            let (zw, sw) = (w_t.zeros[j], w_t.scales[j]);
            let corrected = dot - zw * a_sum - za * w_t.row_sums[j] + k_i32 * za * zw;
            *o = sa * sw * corrected as f32;
        }
    }
}

/// Quantized product `a * w_t^T` with the RHS **already transposed**
/// (`w_t` is `(n, k)`: one quantized row per output channel — the
/// natural write-once layout for lowered weights).
///
/// Accumulation is exact i32 over `(qa - za)(qw - zw)` (computed via the
/// precomputed row-sum expansion), dequantized by `scale_a * scale_w`
/// per output. Because integer addition is associative, the result is
/// bit-identical for any thread count or batch shape by arithmetic
/// alone.
///
/// # Errors
///
/// [`LinalgError::ShapeMismatch`] when `a.cols() != w_t.cols()`.
pub fn matmul_i8(a: &QuantizedMatrixI8, w_t: &QuantizedMatrixI8) -> Result<MatrixF32, LinalgError> {
    let threads = num_threads();
    let flops = a.rows * a.cols * w_t.rows;
    // Int8 MACs are ~4x cheaper than f64 FLOPs; reuse the f64 spawn
    // threshold unscaled, which only errs toward spawning later.
    let workers = if threads > 1 {
        threads.min(flops / PARALLEL_MIN_CHUNK_FLOPS).min(a.rows)
    } else {
        1
    };
    matmul_i8_parallel(a, w_t, workers)
}

/// Quantized product `a * w_t^T` on an explicit worker count (see
/// [`matmul_i8`]); `threads <= 1` runs serially. Bit-identical across
/// `threads` by exact integer accumulation.
///
/// # Errors
///
/// [`LinalgError::ShapeMismatch`] when `a.cols() != w_t.cols()`.
pub fn matmul_i8_parallel(
    a: &QuantizedMatrixI8,
    w_t: &QuantizedMatrixI8,
    threads: usize,
) -> Result<MatrixF32, LinalgError> {
    if a.cols != w_t.cols {
        return Err(LinalgError::ShapeMismatch {
            op: "matmul_i8",
            lhs: (a.rows, a.cols),
            rhs: (w_t.cols, w_t.rows),
        });
    }
    let (m, n) = (a.rows, w_t.rows);
    let mut out = MatrixF32::zeros(m, n);
    if m == 0 || n == 0 {
        return Ok(out);
    }
    let rows_per_chunk = m.div_ceil(threads.max(1)).max(1);
    parallel_chunks_mut(
        &mut out.data,
        rows_per_chunk * n,
        threads,
        |chunk_index, chunk| {
            quantized_rows(a, w_t, chunk_index * rows_per_chunk, chunk);
        },
    );
    Ok(out)
}

/// Fast elementwise `tanh` for the reduced-precision tier.
///
/// The exact f64 path calls libm's `tanh`, which costs more than an
/// entire hidden-layer matmul row at serving widths; the lowered tiers
/// are accuracy-gated, not bit-exact, so they get a branch-light
/// polynomial instead: the `[7/8]` Padé continued-fraction truncation
/// below `|x| < 5`, saturating to `±1` beyond. Absolute error is
/// ≤ 1.5e-5 for `|x| ≤ 4` and ≤ 1.1e-4 at the `|x| = 5` crossover
/// (where `1 - tanh` itself is 9.1e-5) — an order of magnitude under
/// the int8 grid and absorbed by the f32 tier's argmax decode.
///
/// Deterministic and elementwise, so it inherits the tier's
/// batch-shape and thread-count bit-stability for free.
#[must_use]
pub fn tanh_f32_fast(x: f32) -> f32 {
    if x.is_nan() {
        return x;
    }
    if x >= 5.0 {
        return 1.0;
    }
    if x <= -5.0 {
        return -1.0;
    }
    let x2 = x * x;
    let p = x * (135_135.0 + x2 * (17_325.0 + x2 * (378.0 + x2)));
    let q = 135_135.0 + x2 * (62_370.0 + x2 * (3_150.0 + x2 * 28.0));
    // f32 rounding can push the ratio a few ulps past ±1 near the
    // crossover; tanh is bounded, so pin it.
    (p / q).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul_naive;

    fn deterministic(rows: usize, cols: usize, salt: u64) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(j as u64)
                .wrapping_mul(0x85EB_CA6B)
                .wrapping_add(salt);
            ((h % 2000) as f64 - 1000.0) / 257.0
        })
    }

    #[test]
    fn f32_kernels_match_f64_reference_at_tolerance() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (33, 17, 65), (70, 80, 70)] {
            let a = deterministic(m, k, 1);
            let b = deterministic(k, n, 2);
            let reference = matmul_naive(&a, &b).unwrap();
            let (a32, b32) = (MatrixF32::from_f64(&a), MatrixF32::from_f64(&b));
            for got in [
                matmul_f32_naive(&a32, &b32).unwrap(),
                matmul_f32_blocked(&a32, &b32).unwrap(),
                matmul_f32(&a32, &b32).unwrap(),
            ] {
                let diff = reference.max_abs_diff(&got.to_f64()).unwrap();
                // f32 has ~7 decimal digits; inputs are O(4), k ≤ 80.
                assert!(diff < 1e-2, "{m}x{k}x{n}: f32 drifted {diff}");
            }
        }
    }

    #[test]
    fn f32_parallel_is_bit_identical_to_blocked() {
        let a = MatrixF32::from_f64(&deterministic(67, 33, 3));
        let b = MatrixF32::from_f64(&deterministic(33, 41, 4));
        let blocked = matmul_f32_blocked(&a, &b).unwrap();
        for threads in [1, 2, 3, 8] {
            let par = matmul_f32_parallel(&a, &b, threads).unwrap();
            assert_eq!(par, blocked, "threads={threads}");
        }
    }

    #[test]
    fn f32_dispatch_rows_are_batch_shape_invariant() {
        for &(k, n) in &[(80, 80), (16, 16)] {
            let b = MatrixF32::from_f64(&deterministic(k, n, 11));
            for &m in &[2usize, 7, 64] {
                let a = MatrixF32::from_f64(&deterministic(m, k, 12));
                let full = matmul_f32(&a, &b).unwrap();
                for i in 0..m {
                    let row = MatrixF32::from_vec(1, k, a.row(i).to_vec()).unwrap();
                    let alone = matmul_f32(&row, &b).unwrap();
                    assert_eq!(full.row(i), alone.row(0), "row {i} of {m}x{k}x{n}");
                }
            }
        }
    }

    #[test]
    fn f32_dispatch_invariant_across_thread_counts() {
        let _guard = crate::threads::TEST_THREAD_LOCK.lock().unwrap();
        let a = MatrixF32::from_f64(&deterministic(96, 128, 21));
        let b = MatrixF32::from_f64(&deterministic(128, 128, 22));
        let reference = matmul_f32_blocked(&a, &b).unwrap();
        for threads in [1, 2, 4] {
            crate::threads::set_num_threads(threads);
            assert_eq!(matmul_f32(&a, &b).unwrap(), reference, "threads={threads}");
        }
        crate::threads::set_num_threads(0);
    }

    #[test]
    fn quantize_round_trip_is_within_one_step_and_keeps_zeros() {
        let m = MatrixF32::from_f64(&deterministic(9, 37, 5));
        let q = QuantizedMatrixI8::quantize(&m);
        let back = q.dequantize();
        for i in 0..m.rows() {
            let step = q.row_step(i);
            for (a, b) in m.row(i).iter().zip(back.row(i)) {
                assert!((a - b).abs() <= step, "row {i}: {a} vs {b} (step {step})");
            }
        }
        // Exact zeros survive: the quantization range always includes 0.
        let mut z = MatrixF32::from_f64(&deterministic(2, 8, 6));
        z.row_mut(0)[3] = 0.0;
        let back = QuantizedMatrixI8::quantize(&z).dequantize();
        assert_eq!(back.row(0)[3], 0.0);
        // Degenerate all-zero row round-trips to zeros.
        let zero = MatrixF32::zeros(1, 5);
        assert_eq!(QuantizedMatrixI8::quantize(&zero).dequantize(), zero);
    }

    #[test]
    fn i8_matmul_tracks_f64_reference_within_quantization_bound() {
        for &(m, k, n) in &[(4, 24, 6), (16, 96, 32)] {
            let a = deterministic(m, k, 7);
            let w = deterministic(k, n, 8);
            let reference = matmul_naive(&a, &w).unwrap();
            let qa = QuantizedMatrixI8::quantize_f64(&a);
            let qw = QuantizedMatrixI8::quantize_f64(&w.transpose());
            let got = matmul_i8(&qa, &qw).unwrap().to_f64();
            // Per-element error ≤ k * (|a|max * step_w + |w|max * step_a +
            // step_a * step_w); inputs are O(4), steps ~ 8/255 ≈ 0.03.
            let bound = k as f64 * 0.3;
            let diff = reference.max_abs_diff(&got).unwrap();
            assert!(diff < bound, "{m}x{k}x{n}: int8 drifted {diff} > {bound}");
        }
    }

    #[test]
    fn i8_matmul_bit_identical_across_thread_counts() {
        let qa = QuantizedMatrixI8::quantize_f64(&deterministic(33, 48, 9));
        let qw = QuantizedMatrixI8::quantize_f64(&deterministic(21, 48, 10));
        let serial = matmul_i8_parallel(&qa, &qw, 1).unwrap();
        for threads in [2, 3, 8] {
            let par = matmul_i8_parallel(&qa, &qw, threads).unwrap();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn lowp_kernels_reject_shape_mismatch() {
        let a = MatrixF32::zeros(2, 3);
        let b = MatrixF32::zeros(2, 3);
        assert!(matmul_f32_naive(&a, &b).is_err());
        assert!(matmul_f32_blocked(&a, &b).is_err());
        assert!(matmul_f32_parallel(&a, &b, 2).is_err());
        let qa = QuantizedMatrixI8::quantize(&a);
        let qw = QuantizedMatrixI8::quantize(&MatrixF32::zeros(4, 4));
        assert!(matmul_i8(&qa, &qw).is_err());
    }

    #[test]
    fn fast_tanh_tracks_libm_within_its_envelope() {
        let mut worst = 0.0f64;
        for i in -120_000..=120_000 {
            let x = i as f32 / 10_000.0; // [-12, 12] in 1e-4 steps
            let got = f64::from(tanh_f32_fast(x));
            let want = f64::from(x).tanh();
            worst = worst.max((got - want).abs());
            assert!(
                got.abs() <= 1.0,
                "tanh_f32_fast({x}) = {got} leaves [-1, 1]"
            );
        }
        assert!(
            worst <= 1.1e-4,
            "fast tanh error {worst} exceeds the envelope"
        );
        // Odd symmetry and saturation are exact.
        assert_eq!(tanh_f32_fast(0.0), 0.0);
        assert_eq!(tanh_f32_fast(7.0), 1.0);
        assert_eq!(tanh_f32_fast(-7.0), -1.0);
        assert_eq!(tanh_f32_fast(2.5), -tanh_f32_fast(-2.5));
        assert!(tanh_f32_fast(f32::NAN).is_nan());
        assert_eq!(tanh_f32_fast(f32::INFINITY), 1.0);
        assert_eq!(tanh_f32_fast(f32::NEG_INFINITY), -1.0);
    }

    #[test]
    fn empty_dimensions_are_fine_in_lowp() {
        let a = MatrixF32::zeros(0, 4);
        let b = MatrixF32::zeros(4, 3);
        assert_eq!(matmul_f32_parallel(&a, &b, 4).unwrap().shape(), (0, 3));
        let qa = QuantizedMatrixI8::quantize(&MatrixF32::zeros(3, 0));
        let qw = QuantizedMatrixI8::quantize(&MatrixF32::zeros(2, 0));
        let out = matmul_i8(&qa, &qw).unwrap();
        assert_eq!(out.shape(), (3, 2));
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }
}
