use std::error::Error;
use std::fmt;

/// Errors produced by linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left operand.
        lhs: (usize, usize),
        /// Shape of the right operand.
        rhs: (usize, usize),
    },
    /// A square matrix was required.
    NotSquare {
        /// Actual shape encountered.
        shape: (usize, usize),
    },
    /// Factorization failed because the matrix is singular (or not positive
    /// definite for Cholesky).
    Singular {
        /// Pivot index at which the factorization broke down.
        pivot: usize,
    },
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the iterative method.
        method: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// The input was empty where data was required.
    Empty,
    /// An argument was out of its valid range.
    InvalidArgument(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, lhs, rhs } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "square matrix required, got {}x{}", shape.0, shape.1)
            }
            LinalgError::Singular { pivot } => {
                write!(
                    f,
                    "matrix is singular or not positive definite at pivot {pivot}"
                )
            }
            LinalgError::NoConvergence { method, iterations } => {
                write!(f, "{method} did not converge after {iterations} iterations")
            }
            LinalgError::Empty => write!(f, "empty input where data was required"),
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = LinalgError::ShapeMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let msg = e.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("2x3"));
        assert!(msg.contains("4x5"));
    }

    #[test]
    fn display_singular() {
        let e = LinalgError::Singular { pivot: 3 };
        assert!(e.to_string().contains("pivot 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
