//! Vector kernels shared across the suite.
//!
//! These free functions operate on plain `&[f64]` slices so callers can use
//! them on matrix rows, feature vectors, and coordinate pairs without
//! conversions.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "dot: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(
        a.len(),
        b.len(),
        "squared_distance: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    squared_distance(a, b).sqrt()
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place `y += x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn add_assign(y: &mut [f64], x: &[f64]) {
    axpy(1.0, x, y);
}

/// Element-wise difference `a - b` as a new vector.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// In-place scalar multiplication.
pub fn scale_in_place(a: &mut [f64], alpha: f64) {
    for v in a {
        *v *= alpha;
    }
}

/// Normalizes `a` to unit L2 norm in place and returns the original norm.
///
/// Vectors with norm below `1e-300` are left untouched (returning the tiny
/// norm) to avoid dividing by zero.
pub fn normalize_in_place(a: &mut [f64]) -> f64 {
    let n = norm(a);
    if n > 1e-300 {
        scale_in_place(a, 1.0 / n);
    }
    n
}

/// Arithmetic mean; returns 0.0 for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// `n` evenly spaced values from `start` to `end` inclusive.
///
/// `n == 0` yields an empty vector and `n == 1` yields `[start]`.
pub fn linspace(start: f64, end: f64, n: usize) -> Vec<f64> {
    match n {
        0 => Vec::new(),
        1 => vec![start],
        _ => {
            let step = (end - start) / (n - 1) as f64;
            (0..n).map(|i| start + step * i as f64).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn distances() {
        assert_eq!(squared_distance(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(euclidean_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean_distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
        add_assign(&mut y, &[1.0, 1.0]);
        assert_eq!(y, vec![8.0, 10.0]);
    }

    #[test]
    fn sub_makes_new_vector() {
        assert_eq!(sub(&[5.0, 3.0], &[2.0, 1.0]), vec![3.0, 2.0]);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = vec![3.0, 4.0];
        let n = normalize_in_place(&mut v);
        assert!((n - 5.0).abs() < 1e-12);
        assert!((norm(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_untouched() {
        let mut v = vec![0.0, 0.0];
        normalize_in_place(&mut v);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn linspace_endpoints() {
        assert!(linspace(0.0, 1.0, 0).is_empty());
        assert_eq!(linspace(2.0, 9.0, 1), vec![2.0]);
        let v = linspace(0.0, 1.0, 5);
        assert_eq!(v.len(), 5);
        assert_eq!(v[0], 0.0);
        assert_eq!(v[4], 1.0);
        assert!((v[2] - 0.5).abs() < 1e-12);
    }
}
