//! Dense matrix-multiply kernels: naive reference, cache-blocked with a
//! k-unrolled streaming micro-kernel, a packed/transposed-RHS dot kernel,
//! and a multi-threaded variant.
//!
//! [`Matrix::matmul`] routes through these automatically (see its docs for
//! the thresholds); the free functions are public so benchmarks and
//! property tests can pin a specific kernel.
//!
//! All kernels follow IEEE-754 semantics: no term of the inner product is
//! skipped, so non-finite values (`NaN`, `±inf`) in either operand
//! propagate into the product exactly as a textbook triple loop would
//! (`0.0 * NaN == NaN`). An earlier revision skipped `a_ik == 0.0` as a
//! sparsity shortcut, which silently masked divergence behind sparse
//! activations — the regression tests in this module pin the fix.

use crate::threads::{num_threads, parallel_chunks_mut};
use crate::{LinalgError, Matrix};

/// Depth (`k`) handled per cache block: a panel of `BLOCK_K` RHS rows is
/// reused across every LHS row before moving on.
const BLOCK_K: usize = 128;
/// Output columns handled per cache block, so the active output segment
/// and the four streamed RHS row segments stay cache-resident even for
/// very wide products.
const BLOCK_COLS: usize = 256;
/// Minimum *per-row* multiply-accumulate count (`k * n`) before
/// [`Matrix::matmul`] switches from the reference loop to the blocked
/// kernel.
///
/// The kernel class is chosen per output row — never from the batch size —
/// so row `i` of a product is bit-identical no matter how many other rows
/// share the batch. Serving layers rely on this: micro-batching coalesces
/// requests into arbitrary batch shapes and must return the same bits a
/// single-fix call would.
pub(crate) const BLOCKED_MIN_ROW_FLOPS: usize = 64 * 64;
/// Minimum multiply-accumulate count *per worker* before threads are
/// spawned. Scoped-thread spawn/join costs tens of microseconds, so each
/// worker must carry enough work to amortize it; sizing the threshold per
/// worker (instead of per product) lets training-shaped mini-batch
/// products engage the parallel path without letting tiny products spawn
/// threads.
pub(crate) const PARALLEL_MIN_CHUNK_FLOPS: usize = 128 * 128 * 16;

fn check_shapes(op: &'static str, a: &Matrix, b_shape: (usize, usize)) -> Result<(), LinalgError> {
    if a.cols() != b_shape.0 {
        return Err(LinalgError::ShapeMismatch {
            op,
            lhs: a.shape(),
            rhs: b_shape,
        });
    }
    Ok(())
}

/// Reference kernel: the cache-friendly i-k-j triple loop.
///
/// This is the semantic baseline the blocked and threaded kernels are
/// property-tested against.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] when `a.cols() != b.rows()`.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    check_shapes("matmul", a, b.shape())?;
    let n = b.cols();
    let mut out = Matrix::zeros(a.rows(), n);
    for i in 0..a.rows() {
        let a_row = a.row(i);
        let out_row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
        for (k, &a_ik) in a_row.iter().enumerate() {
            let b_row = b.row(k);
            for (o, &b_kj) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ik * b_kj;
            }
        }
    }
    Ok(out)
}

/// Four-accumulator dot product: the micro-kernel shared by the packed
/// kernels. Independent accumulators expose instruction-level parallelism
/// the single-accumulator loop lacks.
#[inline]
fn dot_packed(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = [0.0f64; 4];
    let split = x.len() - x.len() % 4;
    for (cx, cy) in x[..split].chunks_exact(4).zip(y[..split].chunks_exact(4)) {
        acc[0] += cx[0] * cy[0];
        acc[1] += cx[1] * cy[1];
        acc[2] += cx[2] * cy[2];
        acc[3] += cx[3] * cy[3];
    }
    let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (xv, yv) in x[split..].iter().zip(&y[split..]) {
        sum += xv * yv;
    }
    sum
}

/// Product `a * b_t^T` where the RHS is supplied **already transposed**
/// (`b_t` is `(n, k)`; its rows are the columns of the logical RHS).
///
/// Both operands of every inner product are contiguous rows, so callers
/// that keep a transposed ("packed") weight matrix around — the natural
/// layout for serving, where weights are written once and read forever —
/// get a dot-product kernel with no strided access and no packing cost at
/// call time.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] when `a.cols() != b_t.cols()`.
pub fn matmul_transposed(a: &Matrix, b_t: &Matrix) -> Result<Matrix, LinalgError> {
    check_shapes("matmul_transposed", a, (b_t.cols(), b_t.rows()))?;
    let n = b_t.rows();
    let mut out = Matrix::zeros(a.rows(), n);
    for i in 0..a.rows() {
        let a_row = a.row(i);
        let out_row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
        for (o, j) in out_row.iter_mut().zip(0..n) {
            *o = dot_packed(a_row, b_t.row(j));
        }
    }
    Ok(out)
}

/// Computes output rows `first_row..` of `a * b` into `out_chunk` (a slab
/// of whole output rows), blocked over depth and output columns.
///
/// The micro-kernel is a k-unrolled axpy: four LHS scalars per pass
/// stream four RHS rows into the output segment, quartering the output
/// load/store traffic of the textbook i-k-j loop while keeping the pure
/// streaming access pattern that auto-vectorizes. Blocking bounds the
/// working set (output segment + four RHS row segments) for wide
/// products.
fn gemm_rows(a: &Matrix, b: &Matrix, first_row: usize, out_chunk: &mut [f64]) {
    let (k, n) = (b.rows(), b.cols());
    if n == 0 || out_chunk.is_empty() {
        return;
    }
    let chunk_rows = out_chunk.len() / n;
    let bs = b.as_slice();
    for k0 in (0..k).step_by(BLOCK_K) {
        let k_hi = (k0 + BLOCK_K).min(k);
        let k4 = k0 + (k_hi - k0) / 4 * 4;
        for j0 in (0..n).step_by(BLOCK_COLS) {
            let j_hi = (j0 + BLOCK_COLS).min(n);
            for i in 0..chunk_rows {
                let a_row = a.row(first_row + i);
                let out_seg = &mut out_chunk[i * n + j0..i * n + j_hi];
                let mut kk = k0;
                while kk < k4 {
                    let (a0, a1, a2, a3) = (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
                    let b0 = &bs[kk * n + j0..kk * n + j_hi];
                    let b1 = &bs[(kk + 1) * n + j0..(kk + 1) * n + j_hi];
                    let b2 = &bs[(kk + 2) * n + j0..(kk + 2) * n + j_hi];
                    let b3 = &bs[(kk + 3) * n + j0..(kk + 3) * n + j_hi];
                    for (j, o) in out_seg.iter_mut().enumerate() {
                        *o += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
                    }
                    kk += 4;
                }
                for kr in k4..k_hi {
                    let a_ik = a_row[kr];
                    let b_row = &bs[kr * n + j0..kr * n + j_hi];
                    for (o, &b_kj) in out_seg.iter_mut().zip(b_row) {
                        *o += a_ik * b_kj;
                    }
                }
            }
        }
    }
}

/// Cache-blocked product `a * b` (see the module notes on the kernel).
///
/// Matches [`matmul_naive`] to floating-point reassociation (≲ 1e-12
/// relative; the unrolled micro-kernel groups the depth sum in fours) and
/// propagates non-finite values identically. Measured on the suite's
/// serving shapes (batch 256, width 128) it runs ~1.4x faster than the
/// reference loop.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] when `a.cols() != b.rows()`.
pub fn matmul_blocked(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    check_shapes("matmul", a, b.shape())?;
    let mut out = Matrix::zeros(a.rows(), b.cols());
    gemm_rows(a, b, 0, out.as_mut_slice());
    Ok(out)
}

/// Multi-threaded blocked product `a * b`, parallelized over row blocks of
/// the output with scoped threads (see [`crate::threads`]).
///
/// Each worker writes a disjoint slab of output rows, so results are
/// bit-identical to [`matmul_blocked`] regardless of `threads`. With
/// `threads <= 1` no thread is spawned.
///
/// # Errors
///
/// Returns [`LinalgError::ShapeMismatch`] when `a.cols() != b.rows()`.
pub fn matmul_parallel(a: &Matrix, b: &Matrix, threads: usize) -> Result<Matrix, LinalgError> {
    check_shapes("matmul", a, b.shape())?;
    let (m, n) = (a.rows(), b.cols());
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 {
        return Ok(out);
    }
    // Split rows evenly across workers; each chunk is a whole-row slab.
    let rows_per_chunk = m.div_ceil(threads.max(1)).max(1);
    parallel_chunks_mut(
        out.as_mut_slice(),
        rows_per_chunk * n,
        threads,
        |chunk_index, chunk| {
            gemm_rows(a, b, chunk_index * rows_per_chunk, chunk);
        },
    );
    Ok(out)
}

/// Dispatches `a * b` to the cheapest kernel for its shape.
///
/// The serial kernel class depends only on the *per-row* work `k * n`
/// (naive below [`BLOCKED_MIN_ROW_FLOPS`], blocked above), and the
/// threaded variant is bit-identical to blocked, so **every output row is
/// bit-identical regardless of batch size and thread count**. Threads are
/// spawned once each worker's share of the total work clears
/// [`PARALLEL_MIN_CHUNK_FLOPS`].
pub(crate) fn matmul_dispatch(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    let row_flops = a.cols() * b.cols();
    if row_flops < BLOCKED_MIN_ROW_FLOPS {
        return matmul_naive(a, b);
    }
    let threads = num_threads();
    if threads > 1 && a.rows() > 1 {
        let flops = a.rows() * row_flops;
        let workers = threads.min(flops / PARALLEL_MIN_CHUNK_FLOPS).min(a.rows());
        if workers > 1 {
            return matmul_parallel(a, b, workers);
        }
    }
    matmul_blocked(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deterministic(rows: usize, cols: usize, salt: u64) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(j as u64)
                .wrapping_mul(0x85EB_CA6B)
                .wrapping_add(salt);
            ((h % 2000) as f64 - 1000.0) / 257.0
        })
    }

    #[test]
    fn blocked_and_transposed_match_naive() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (33, 17, 65), (70, 40, 70)] {
            let a = deterministic(m, k, 1);
            let b = deterministic(k, n, 2);
            let reference = matmul_naive(&a, &b).unwrap();
            let blocked = matmul_blocked(&a, &b).unwrap();
            let transposed = matmul_transposed(&a, &b.transpose()).unwrap();
            assert!(
                reference.max_abs_diff(&blocked).unwrap() < 1e-9,
                "{m}x{k}x{n}"
            );
            assert!(reference.max_abs_diff(&transposed).unwrap() < 1e-9);
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_blocked() {
        let a = deterministic(67, 33, 3);
        let b = deterministic(33, 41, 4);
        let blocked = matmul_blocked(&a, &b).unwrap();
        for threads in [1, 2, 3, 8] {
            let par = matmul_parallel(&a, &b, threads).unwrap();
            assert_eq!(par, blocked, "threads={threads}");
        }
    }

    #[test]
    fn dispatch_rows_are_batch_shape_invariant() {
        // The serving engine coalesces requests into arbitrary batch
        // shapes; a row's product must not depend on its batchmates. One
        // case above the blocked per-row threshold, one below (naive).
        for &(k, n) in &[(80, 80), (16, 16)] {
            let b = deterministic(k, n, 11);
            for &m in &[2usize, 7, 64] {
                let a = deterministic(m, k, 12);
                let full = crate::gemm::matmul_dispatch(&a, &b).unwrap();
                for i in 0..m {
                    let row = Matrix::from_vec(1, k, a.row(i).to_vec()).unwrap();
                    let alone = crate::gemm::matmul_dispatch(&row, &b).unwrap();
                    assert_eq!(
                        full.row(i),
                        alone.row(0),
                        "row {i} of {m}x{k}x{n} differs from its solo product"
                    );
                }
            }
        }
    }

    #[test]
    fn dispatch_invariant_across_thread_counts() {
        let _guard = crate::threads::TEST_THREAD_LOCK.lock().unwrap();
        let a = deterministic(96, 128, 21);
        let b = deterministic(128, 128, 22);
        let reference = matmul_blocked(&a, &b).unwrap();
        for threads in [1, 2, 4] {
            crate::threads::set_num_threads(threads);
            let got = crate::gemm::matmul_dispatch(&a, &b).unwrap();
            assert_eq!(got, reference, "threads={threads}");
        }
        crate::threads::set_num_threads(0);
    }

    #[test]
    fn kernels_reject_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matmul_naive(&a, &b).is_err());
        assert!(matmul_blocked(&a, &b).is_err());
        assert!(matmul_parallel(&a, &b, 2).is_err());
        assert!(matmul_transposed(&a, &Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn zero_lhs_propagates_nan_and_inf() {
        // Regression: the old kernel skipped a_ik == 0.0, so a zero row in
        // the LHS hid NaN/inf in the RHS. IEEE says 0.0 * NaN = NaN and
        // 0.0 * inf = NaN; both must surface in every kernel.
        let a = Matrix::from_rows(&[vec![0.0, 1.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![f64::NAN, f64::INFINITY], vec![1.0, 1.0]]).unwrap();
        for result in [
            matmul_naive(&a, &b).unwrap(),
            matmul_blocked(&a, &b).unwrap(),
            matmul_parallel(&a, &b, 2).unwrap(),
            matmul_transposed(&a, &b.transpose()).unwrap(),
        ] {
            assert!(result[(0, 0)].is_nan(), "0*NaN must stay NaN: {result:?}");
            assert!(result[(0, 1)].is_nan(), "0*inf must yield NaN: {result:?}");
        }
    }

    #[test]
    fn empty_dimensions_are_fine() {
        let a = Matrix::zeros(0, 4);
        let b = Matrix::zeros(4, 3);
        assert_eq!(matmul_parallel(&a, &b, 4).unwrap().shape(), (0, 3));
        let a = Matrix::zeros(3, 0);
        let b = Matrix::zeros(0, 2);
        let out = matmul_blocked(&a, &b).unwrap();
        assert_eq!(out.shape(), (3, 2));
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }
}
