//! Property tests of the matmul kernels: the blocked, transposed and
//! threaded paths must agree with the naive reference across arbitrary
//! shapes and values, and batched products must agree with row-at-a-time
//! products (the invariant the batched inference engine rests on).

use noble_linalg::{matmul_blocked, matmul_naive, matmul_parallel, matmul_transposed, Matrix};
use proptest::prelude::*;

fn matrix_strategy(
    rows: core::ops::Range<usize>,
    cols: core::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols, 0u64..1 << 20).prop_map(|(r, c, salt)| {
        Matrix::from_fn(r, c, |i, j| {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((j as u64).wrapping_mul(0xC2B2_AE35))
                .wrapping_add(salt.wrapping_mul(0x1656_67B1));
            ((h % 4001) as f64 - 2000.0) / 311.0
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked, transposed and threaded kernels match the naive reference
    /// within 1e-12 across random shapes (they reassociate the inner sum,
    /// so bit equality is not expected — but parallel == blocked exactly).
    #[test]
    fn kernels_agree_across_shapes(
        dims in (1usize..48, 1usize..48, 1usize..48, 0u64..1 << 16),
    ) {
        let (m, k, n, salt) = dims;
        let a = matrix_strategy(m..m + 1, k..k + 1)
            .generate(&mut proptest::test_runner::TestRng::new(salt));
        let b = matrix_strategy(k..k + 1, n..n + 1)
            .generate(&mut proptest::test_runner::TestRng::new(salt ^ 0xABCD));
        let reference = matmul_naive(&a, &b).unwrap();
        let scale = reference
            .as_slice()
            .iter()
            .fold(1.0f64, |acc, v| acc.max(v.abs()));

        let blocked = matmul_blocked(&a, &b).unwrap();
        prop_assert!(
            reference.max_abs_diff(&blocked).unwrap() <= 1e-12 * scale,
            "blocked kernel diverges for {m}x{k}x{n}"
        );
        let transposed = matmul_transposed(&a, &b.transpose()).unwrap();
        prop_assert!(
            reference.max_abs_diff(&transposed).unwrap() <= 1e-12 * scale,
            "transposed kernel diverges for {m}x{k}x{n}"
        );
        for threads in [2usize, 4] {
            let par = matmul_parallel(&a, &b, threads).unwrap();
            prop_assert_eq!(&par, &blocked);
        }
    }

    /// Batch-vs-single parity at the kernel level: multiplying a stacked
    /// batch equals multiplying each row separately. This is the algebraic
    /// fact `predict_batch` and `localize_batch` rely on.
    #[test]
    fn batched_product_matches_per_row_products(
        a in matrix_strategy(1usize..24, 1usize..24),
        seed in 0u64..1 << 16,
    ) {
        let k = a.cols();
        let b = matrix_strategy(k..k + 1, 1usize..24)
            .generate(&mut proptest::test_runner::TestRng::new(seed));
        let batched = a.matmul(&b).unwrap();
        for i in 0..a.rows() {
            let single = a.select_rows(&[i]).matmul(&b).unwrap();
            for j in 0..b.cols() {
                prop_assert!(
                    (batched[(i, j)] - single[(0, j)]).abs() <= 1e-12 * single[(0, j)].abs().max(1.0),
                    "row {i} col {j}: batched {} vs single {}",
                    batched[(i, j)],
                    single[(0, j)]
                );
            }
        }
    }
}
