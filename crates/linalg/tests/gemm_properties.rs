//! Property tests of the matmul kernels: the blocked, transposed and
//! threaded paths must agree with the naive reference across arbitrary
//! shapes and values, and batched products must agree with row-at-a-time
//! products (the invariant the batched inference engine rests on).
//! The reduced-precision kernels (f32 family, int8 quantized) are held
//! to the same structure at their tier's tolerance.

use noble_linalg::{
    matmul_blocked, matmul_f32, matmul_f32_blocked, matmul_f32_naive, matmul_f32_parallel,
    matmul_i8, matmul_i8_parallel, matmul_naive, matmul_parallel, matmul_transposed, Matrix,
    MatrixF32, QuantizedMatrixI8,
};
use proptest::prelude::*;

fn matrix_strategy(
    rows: core::ops::Range<usize>,
    cols: core::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols, 0u64..1 << 20).prop_map(|(r, c, salt)| {
        Matrix::from_fn(r, c, |i, j| {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((j as u64).wrapping_mul(0xC2B2_AE35))
                .wrapping_add(salt.wrapping_mul(0x1656_67B1));
            ((h % 4001) as f64 - 2000.0) / 311.0
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked, transposed and threaded kernels match the naive reference
    /// within 1e-12 across random shapes (they reassociate the inner sum,
    /// so bit equality is not expected — but parallel == blocked exactly).
    #[test]
    fn kernels_agree_across_shapes(
        dims in (1usize..48, 1usize..48, 1usize..48, 0u64..1 << 16),
    ) {
        let (m, k, n, salt) = dims;
        let a = matrix_strategy(m..m + 1, k..k + 1)
            .generate(&mut proptest::test_runner::TestRng::new(salt));
        let b = matrix_strategy(k..k + 1, n..n + 1)
            .generate(&mut proptest::test_runner::TestRng::new(salt ^ 0xABCD));
        let reference = matmul_naive(&a, &b).unwrap();
        let scale = reference
            .as_slice()
            .iter()
            .fold(1.0f64, |acc, v| acc.max(v.abs()));

        let blocked = matmul_blocked(&a, &b).unwrap();
        prop_assert!(
            reference.max_abs_diff(&blocked).unwrap() <= 1e-12 * scale,
            "blocked kernel diverges for {m}x{k}x{n}"
        );
        let transposed = matmul_transposed(&a, &b.transpose()).unwrap();
        prop_assert!(
            reference.max_abs_diff(&transposed).unwrap() <= 1e-12 * scale,
            "transposed kernel diverges for {m}x{k}x{n}"
        );
        for threads in [2usize, 4] {
            let par = matmul_parallel(&a, &b, threads).unwrap();
            prop_assert_eq!(&par, &blocked);
        }
    }

    /// The f32 family tracks the f64 naive reference within the f32
    /// accumulation tolerance across arbitrary shapes, the f32 kernels
    /// agree with each other **bitwise** at any thread count, and the
    /// dispatcher returns the same bits as the blocked kernel.
    #[test]
    fn f32_kernels_track_f64_and_agree_bitwise(
        dims in (1usize..48, 1usize..48, 1usize..48, 0u64..1 << 16),
    ) {
        let (m, k, n, salt) = dims;
        let a = matrix_strategy(m..m + 1, k..k + 1)
            .generate(&mut proptest::test_runner::TestRng::new(salt));
        let b = matrix_strategy(k..k + 1, n..n + 1)
            .generate(&mut proptest::test_runner::TestRng::new(salt ^ 0xABCD));
        let reference = matmul_naive(&a, &b).unwrap();
        let scale = reference
            .as_slice()
            .iter()
            .fold(1.0f64, |acc, v| acc.max(v.abs()));

        let a32 = MatrixF32::from_f64(&a);
        let b32 = MatrixF32::from_f64(&b);
        let naive32 = matmul_f32_naive(&a32, &b32).unwrap();
        let widened = naive32.to_f64();
        prop_assert!(
            reference.max_abs_diff(&widened).unwrap() <= 1e-5 * k as f64 * scale,
            "f32 naive kernel drifts past the f32 tolerance for {m}x{k}x{n}"
        );

        // Bitwise structural agreement inside the tier: blocked matches
        // naive only at tolerance (it reassociates), but every threaded
        // run and the dispatcher must match blocked exactly.
        let blocked32 = matmul_f32_blocked(&a32, &b32).unwrap();
        prop_assert!(
            widened.max_abs_diff(&blocked32.to_f64()).unwrap() <= 1e-5 * k as f64 * scale,
            "f32 blocked kernel diverges for {m}x{k}x{n}"
        );
        for threads in [1usize, 2, 4] {
            let par = matmul_f32_parallel(&a32, &b32, threads).unwrap();
            prop_assert_eq!(par.as_slice(), blocked32.as_slice());
        }
        // The dispatcher picks a kernel class per *row* (small rows run
        // naive, big rows run blocked), so its contract is batch-shape
        // invariance: stacking rows never changes any row's bits.
        let dispatched = matmul_f32(&a32, &b32).unwrap();
        for i in 0..m {
            let single = MatrixF32::from_vec(1, k, a32.row(i).to_vec()).unwrap();
            let got = matmul_f32(&single, &b32).unwrap();
            prop_assert_eq!(got.as_slice(), dispatched.row(i));
        }
    }

    /// The int8 quantized product stays inside the affine-grid error
    /// bound versus the f64 reference across arbitrary shapes, and the
    /// threaded path is bit-identical at any thread count.
    #[test]
    fn i8_kernel_is_bounded_and_thread_stable(
        dims in (1usize..32, 1usize..48, 1usize..32, 0u64..1 << 16),
    ) {
        let (m, k, n, salt) = dims;
        let a = matrix_strategy(m..m + 1, k..k + 1)
            .generate(&mut proptest::test_runner::TestRng::new(salt));
        let b = matrix_strategy(k..k + 1, n..n + 1)
            .generate(&mut proptest::test_runner::TestRng::new(salt ^ 0xABCD));
        let reference = matmul_naive(&a, &b).unwrap();

        let qa = QuantizedMatrixI8::quantize_f64(&a);
        // The weight side quantizes the transpose (row-major over the
        // contraction axis), as the lowered network stages do.
        let qb = QuantizedMatrixI8::quantize_f64(&b.transpose());
        let got = matmul_i8(&qa, &qb).unwrap();
        // One affine step is ~(range/255); values here span ~12.9, and
        // both operands contribute, so k * 0.5 comfortably bounds the
        // accumulated grid error while still catching real defects.
        let bound = k as f64 * 0.5;
        prop_assert!(
            reference.max_abs_diff(&got.to_f64()).unwrap() <= bound,
            "int8 product drifts past the calibrated bound for {m}x{k}x{n}"
        );
        for threads in [1usize, 2, 4] {
            let par = matmul_i8_parallel(&qa, &qb, threads).unwrap();
            prop_assert_eq!(par.as_slice(), got.as_slice());
        }
    }

    /// Batch-vs-single parity at the kernel level: multiplying a stacked
    /// batch equals multiplying each row separately. This is the algebraic
    /// fact `predict_batch` and `localize_batch` rely on.
    #[test]
    fn batched_product_matches_per_row_products(
        a in matrix_strategy(1usize..24, 1usize..24),
        seed in 0u64..1 << 16,
    ) {
        let k = a.cols();
        let b = matrix_strategy(k..k + 1, 1usize..24)
            .generate(&mut proptest::test_runner::TestRng::new(seed));
        let batched = a.matmul(&b).unwrap();
        for i in 0..a.rows() {
            let single = a.select_rows(&[i]).matmul(&b).unwrap();
            for j in 0..b.cols() {
                prop_assert!(
                    (batched[(i, j)] - single[(0, j)]).abs() <= 1e-12 * single[(0, j)].abs().max(1.0),
                    "row {i} col {j}: batched {} vs single {}",
                    batched[(i, j)],
                    single[(0, j)]
                );
            }
        }
    }
}
