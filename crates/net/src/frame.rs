//! The length-prefixed binary wire protocol.
//!
//! Every message on a noble-net connection is one **frame**:
//!
//! ```text
//!  offset  size  field
//!  ------  ----  -----------------------------------------------
//!       0     2  magic  "NB"
//!       2     1  version (currently 1)
//!       3     1  kind    (request 0x01..=0x03, response 0x81..=0x85)
//!       4     8  id      (u64 LE, echoed verbatim on the reply)
//!      12     4  payload length (u32 LE, capped at MAX_PAYLOAD)
//!      16     n  payload (kind-specific, little-endian fields)
//! ```
//!
//! The `id` is the pipelining handle: clients stamp each request with a
//! connection-unique id and may submit many before reading replies; the
//! server echoes the id on whichever response answers it (results may
//! arrive out of submission order under admission scheduling).
//!
//! Payload scalars are little-endian; `f64`s travel as their IEEE-754
//! bit pattern (`to_le_bytes`/`from_le_bytes`), so round-trips are
//! **bit-stable** — including NaNs — and a served fix crosses the wire
//! with the exact bits the model produced. Strings are `u16` length +
//! UTF-8 bytes; options are a one-byte tag; vectors are a counted
//! prefix whose count is validated against the bytes actually present
//! *before* any allocation.
//!
//! Decoding never panics: every truncation, bad tag, bogus count or
//! trailing byte is a typed [`NetError`] (pinned by the `frame_codec`
//! fuzz suite). After a malformed frame the stream cannot resynchronize
//! (lengths can no longer be trusted), so servers answer one typed
//! [`RejectReason::BadFrame`] rejection and close.

use crate::NetError;
use noble_serve::ShardKey;
use std::io::{Read, Write};

/// First two bytes of every frame.
pub const MAGIC: [u8; 2] = *b"NB";
/// The protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 16;
/// Hard cap on one frame's payload: a hostile length prefix can make the
/// decoder refuse, never allocate unbounded memory.
pub const MAX_PAYLOAD: u32 = 1 << 20;

/// Frame kind bytes (requests have the high bit clear, responses set).
mod kind {
    pub const LOCALIZE: u8 = 0x01;
    pub const TRACKED_SUBMIT: u8 = 0x02;
    pub const STATS: u8 = 0x03;
    pub const FIX: u8 = 0x81;
    pub const TRACKED: u8 = 0x82;
    pub const STATS_REPLY: u8 = 0x83;
    pub const REJECTED: u8 = 0x84;
    pub const SERVER_ERROR: u8 = 0x85;
}

/// A shard address on the wire (fixed-width mirror of [`ShardKey`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireShard {
    /// Building index.
    pub building: u32,
    /// Floor index, when sharding per building-floor.
    pub floor: Option<u32>,
}

impl WireShard {
    /// The serving-layer key this addresses.
    pub fn key(self) -> ShardKey {
        ShardKey {
            building: self.building as usize,
            floor: self.floor.map(|f| f as usize),
        }
    }
}

impl From<ShardKey> for WireShard {
    fn from(key: ShardKey) -> Self {
        WireShard {
            building: key.building as u32,
            floor: key.floor.map(|f| f as u32),
        }
    }
}

/// Request: localize one fingerprint (stateless fix tier).
#[derive(Debug, Clone, PartialEq)]
pub struct LocalizeRequest {
    /// Admission-control tenant this request bills against.
    pub tenant: String,
    /// Shard to route to.
    pub shard: WireShard,
    /// Feature row for the shard's model.
    pub fingerprint: Vec<f64>,
}

/// Request: localize + feed the device's tracking session.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackedSubmitRequest {
    /// Admission-control tenant this request bills against.
    pub tenant: String,
    /// Device whose session consumes the fix.
    pub device: u64,
    /// Shard to route to.
    pub shard: WireShard,
    /// Logical observation time (per-device monotone, caller's clock).
    pub at: u64,
    /// Feature row for the shard's model.
    pub fingerprint: Vec<f64>,
}

/// Response: one served fix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixResponse {
    /// Easting of the fix.
    pub x: f64,
    /// Northing of the fix.
    pub y: f64,
    /// Whether the shard was cold and the fix parked while its model
    /// faulted in.
    pub cold: bool,
}

/// One committed zone-membership change, on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireZoneEvent {
    /// Device whose membership changed.
    pub device: u64,
    /// Zone index in the server's zone set.
    pub zone: u32,
    /// `true` = entered, `false` = left.
    pub entered: bool,
    /// Logical time that committed the change.
    pub at: u64,
}

/// Response: one tracked fix plus the zone events it committed.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackedResponse {
    /// Raw localizer output.
    pub raw: FixResponse,
    /// Smoothed-track easting after this observation.
    pub smoothed_x: f64,
    /// Smoothed-track northing after this observation.
    pub smoothed_y: f64,
    /// Committed (hysteresis-stable) zone index, if any.
    pub zone: Option<u32>,
    /// Zone events this observation committed.
    pub events: Vec<WireZoneEvent>,
}

/// Response: server load and admission counters (the observability
/// frame — served outside admission control so it answers even while
/// the server sheds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsResponse {
    /// Requests inside the serving tier, submitted but not yet batched.
    pub queue_depth: u64,
    /// Requests inside the serving tier, submitted but not yet replied.
    pub in_flight: u64,
    /// Shards being served.
    pub shards: u64,
    /// Requests admitted since start.
    pub accepted: u64,
    /// Admitted requests answered (success or typed serve error).
    pub completed: u64,
    /// Requests shed by the global overload watermark.
    pub shed_overload: u64,
    /// Requests shed by a per-tenant quota.
    pub shed_quota: u64,
    /// Connections dropped after a malformed frame.
    pub bad_frames: u64,
}

/// Why a request was refused without being served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The server's global queue watermark is exceeded — total load is
    /// past what the serving tier can absorb.
    Overloaded,
    /// This tenant's own queue is full — its arrival rate exceeds its
    /// fair share even though the server as a whole may have room.
    TenantQuota,
    /// The frame could not be decoded; the connection closes after this
    /// reply.
    BadFrame,
}

impl RejectReason {
    fn tag(self) -> u8 {
        match self {
            RejectReason::Overloaded => 0,
            RejectReason::TenantQuota => 1,
            RejectReason::BadFrame => 2,
        }
    }

    fn from_tag(value: u8) -> Result<Self, NetError> {
        match value {
            0 => Ok(RejectReason::Overloaded),
            1 => Ok(RejectReason::TenantQuota),
            2 => Ok(RejectReason::BadFrame),
            _ => Err(NetError::Tag {
                field: "reject_reason",
                value,
            }),
        }
    }
}

/// Response: typed load-shed / bad-frame rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    /// Why the request was refused.
    pub reason: RejectReason,
    /// Human-readable context (queue depths, the decode error, ...).
    pub detail: String,
}

/// Response: the serving tier answered with a typed [`ServeError`]
/// (unknown shard, feature-width mismatch, shutdown, ...). Distinct
/// from [`Rejection`]: the request *was* admitted and reached a shard.
///
/// [`ServeError`]: noble_serve::ServeError
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerErrorResponse {
    /// Display of the serving error.
    pub detail: String,
}

/// The payload of one frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Body {
    /// 0x01: localize one fingerprint.
    Localize(LocalizeRequest),
    /// 0x02: localize + track.
    TrackedSubmit(TrackedSubmitRequest),
    /// 0x03: read server stats (no payload).
    StatsRequest,
    /// 0x81: a served fix.
    Fix(FixResponse),
    /// 0x82: a served-and-tracked fix.
    Tracked(TrackedResponse),
    /// 0x83: server stats.
    Stats(StatsResponse),
    /// 0x84: typed rejection (request never reached a shard).
    Rejected(Rejection),
    /// 0x85: typed serving-tier error.
    ServerError(ServerErrorResponse),
}

/// One message: a pipelining id plus a typed body.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Connection-unique request id, echoed on the reply.
    pub id: u64,
    /// The typed payload.
    pub body: Body,
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) -> Result<(), NetError> {
    let len = u16::try_from(s.len()).map_err(|_| NetError::Oversized {
        len: s.len() as u32,
        cap: u32::from(u16::MAX),
    })?;
    put_u16(out, len);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_shard(out: &mut Vec<u8>, shard: WireShard) {
    put_u32(out, shard.building);
    match shard.floor {
        Some(f) => {
            out.push(1);
            put_u32(out, f);
        }
        None => out.push(0),
    }
}

fn put_f64_vec(out: &mut Vec<u8>, values: &[f64]) -> Result<(), NetError> {
    let count = u32::try_from(values.len()).map_err(|_| NetError::Oversized {
        len: u32::MAX,
        cap: MAX_PAYLOAD,
    })?;
    put_u32(out, count);
    for &v in values {
        put_f64(out, v);
    }
    Ok(())
}

impl Body {
    /// Serializes the payload into `out` and returns the kind byte.
    fn encode_payload(&self, out: &mut Vec<u8>) -> Result<u8, NetError> {
        match self {
            Body::Localize(req) => {
                put_str(out, &req.tenant)?;
                put_shard(out, req.shard);
                put_f64_vec(out, &req.fingerprint)?;
                Ok(kind::LOCALIZE)
            }
            Body::TrackedSubmit(req) => {
                put_str(out, &req.tenant)?;
                put_u64(out, req.device);
                put_shard(out, req.shard);
                put_u64(out, req.at);
                put_f64_vec(out, &req.fingerprint)?;
                Ok(kind::TRACKED_SUBMIT)
            }
            Body::StatsRequest => Ok(kind::STATS),
            Body::Fix(fix) => {
                put_f64(out, fix.x);
                put_f64(out, fix.y);
                out.push(u8::from(fix.cold));
                Ok(kind::FIX)
            }
            Body::Tracked(t) => {
                put_f64(out, t.raw.x);
                put_f64(out, t.raw.y);
                out.push(u8::from(t.raw.cold));
                put_f64(out, t.smoothed_x);
                put_f64(out, t.smoothed_y);
                match t.zone {
                    Some(z) => {
                        out.push(1);
                        put_u32(out, z);
                    }
                    None => out.push(0),
                }
                let count = u16::try_from(t.events.len()).map_err(|_| NetError::Oversized {
                    len: t.events.len() as u32,
                    cap: u32::from(u16::MAX),
                })?;
                put_u16(out, count);
                for ev in &t.events {
                    put_u64(out, ev.device);
                    put_u32(out, ev.zone);
                    out.push(u8::from(ev.entered));
                    put_u64(out, ev.at);
                }
                Ok(kind::TRACKED)
            }
            Body::Stats(s) => {
                put_u64(out, s.queue_depth);
                put_u64(out, s.in_flight);
                put_u64(out, s.shards);
                put_u64(out, s.accepted);
                put_u64(out, s.completed);
                put_u64(out, s.shed_overload);
                put_u64(out, s.shed_quota);
                put_u64(out, s.bad_frames);
                Ok(kind::STATS_REPLY)
            }
            Body::Rejected(r) => {
                out.push(r.reason.tag());
                put_str(out, &r.detail)?;
                Ok(kind::REJECTED)
            }
            Body::ServerError(e) => {
                put_str(out, &e.detail)?;
                Ok(kind::SERVER_ERROR)
            }
        }
    }
}

impl Frame {
    /// Serializes header + payload into one buffer.
    ///
    /// # Errors
    ///
    /// [`NetError::Oversized`] when a field exceeds its width or the
    /// payload exceeds [`MAX_PAYLOAD`].
    pub fn encode(&self) -> Result<Vec<u8>, NetError> {
        let mut payload = Vec::new();
        let kind = self.body.encode_payload(&mut payload)?;
        if payload.len() > MAX_PAYLOAD as usize {
            return Err(NetError::Oversized {
                len: payload.len() as u32,
                cap: MAX_PAYLOAD,
            });
        }
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(kind);
        put_u64(&mut out, self.id);
        put_u32(&mut out, payload.len() as u32);
        out.extend_from_slice(&payload);
        Ok(out)
    }

    /// Decodes one complete frame from the front of `bytes`, returning
    /// it plus the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// A typed [`NetError`] for every malformation; never panics.
    pub fn decode(bytes: &[u8]) -> Result<(Frame, usize), NetError> {
        if bytes.len() < HEADER_LEN {
            return Err(NetError::Truncated {
                need: HEADER_LEN,
                have: bytes.len(),
            });
        }
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&bytes[..HEADER_LEN]);
        let header = Header::decode(&header)?;
        let total = HEADER_LEN + header.payload_len as usize;
        if bytes.len() < total {
            return Err(NetError::Truncated {
                need: total - HEADER_LEN,
                have: bytes.len() - HEADER_LEN,
            });
        }
        let body = decode_body(header.kind, &bytes[HEADER_LEN..total])?;
        Ok((
            Frame {
                id: header.id,
                body,
            },
            total,
        ))
    }
}

/// A validated frame header (magic/version/length checked; the kind byte
/// is validated against the payload when the body is decoded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Frame kind byte.
    pub kind: u8,
    /// Request id.
    pub id: u64,
    /// Declared payload length (already bounded by [`MAX_PAYLOAD`]).
    pub payload_len: u32,
}

impl Header {
    /// Validates and decodes the fixed 16-byte header.
    ///
    /// # Errors
    ///
    /// [`NetError::BadMagic`] / [`NetError::Version`] /
    /// [`NetError::Oversized`].
    pub fn decode(bytes: &[u8; HEADER_LEN]) -> Result<Self, NetError> {
        if bytes[0..2] != MAGIC {
            return Err(NetError::BadMagic([bytes[0], bytes[1]]));
        }
        if bytes[2] != VERSION {
            return Err(NetError::Version(bytes[2]));
        }
        let kind = bytes[3];
        let mut id = [0u8; 8];
        id.copy_from_slice(&bytes[4..12]);
        let mut len = [0u8; 4];
        len.copy_from_slice(&bytes[12..16]);
        let payload_len = u32::from_le_bytes(len);
        if payload_len > MAX_PAYLOAD {
            return Err(NetError::Oversized {
                len: payload_len,
                cap: MAX_PAYLOAD,
            });
        }
        Ok(Header {
            kind,
            id: u64::from_le_bytes(id),
            payload_len,
        })
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Bounds-checked cursor over one payload: every read either yields the
/// bytes or a typed [`NetError::Truncated`] — no slicing past the end,
/// no panics.
struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.buf.len() < n {
            return Err(NetError::Truncated {
                need: n,
                have: self.buf.len(),
            });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, NetError> {
        let mut b = [0u8; 2];
        b.copy_from_slice(self.take(2)?);
        Ok(u16::from_le_bytes(b))
    }

    fn u32(&mut self) -> Result<u32, NetError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, NetError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn f64(&mut self) -> Result<f64, NetError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(f64::from_le_bytes(b))
    }

    fn bool(&mut self, field: &'static str) -> Result<bool, NetError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            value => Err(NetError::Tag { field, value }),
        }
    }

    fn string(&mut self, field: &'static str) -> Result<String, NetError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| NetError::Utf8 { field })
    }

    fn shard(&mut self) -> Result<WireShard, NetError> {
        let building = self.u32()?;
        let floor = match self.u8()? {
            0 => None,
            1 => Some(self.u32()?),
            value => {
                return Err(NetError::Tag {
                    field: "shard_floor",
                    value,
                })
            }
        };
        Ok(WireShard { building, floor })
    }

    fn f64_vec(&mut self, field: &'static str) -> Result<Vec<f64>, NetError> {
        let count = self.u32()?;
        // Validate the count against the bytes actually present before
        // allocating: a corrupt 4-byte count must not reserve gigabytes.
        let need = (count as usize).checked_mul(8);
        if need.is_none_or(|n| n > self.buf.len()) {
            return Err(NetError::Count { field, count });
        }
        let mut out = Vec::with_capacity(count as usize);
        for _ in 0..count {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    fn finish(self) -> Result<(), NetError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(NetError::TrailingBytes(self.buf.len()))
        }
    }
}

fn decode_body(kind: u8, payload: &[u8]) -> Result<Body, NetError> {
    let mut r = Reader { buf: payload };
    let body = match kind {
        kind::LOCALIZE => Body::Localize(LocalizeRequest {
            tenant: r.string("tenant")?,
            shard: r.shard()?,
            fingerprint: r.f64_vec("fingerprint")?,
        }),
        kind::TRACKED_SUBMIT => Body::TrackedSubmit(TrackedSubmitRequest {
            tenant: r.string("tenant")?,
            device: r.u64()?,
            shard: r.shard()?,
            at: r.u64()?,
            fingerprint: r.f64_vec("fingerprint")?,
        }),
        kind::STATS => Body::StatsRequest,
        kind::FIX => Body::Fix(FixResponse {
            x: r.f64()?,
            y: r.f64()?,
            cold: r.bool("cold")?,
        }),
        kind::TRACKED => {
            let raw = FixResponse {
                x: r.f64()?,
                y: r.f64()?,
                cold: r.bool("cold")?,
            };
            let smoothed_x = r.f64()?;
            let smoothed_y = r.f64()?;
            let zone = match r.u8()? {
                0 => None,
                1 => Some(r.u32()?),
                value => {
                    return Err(NetError::Tag {
                        field: "zone",
                        value,
                    })
                }
            };
            let count = r.u16()?;
            // 21 bytes per event; validate before allocating.
            let need = (count as usize).checked_mul(21);
            if need.is_none_or(|n| n > r.buf.len()) {
                return Err(NetError::Count {
                    field: "events",
                    count: u32::from(count),
                });
            }
            let mut events = Vec::with_capacity(count as usize);
            for _ in 0..count {
                events.push(WireZoneEvent {
                    device: r.u64()?,
                    zone: r.u32()?,
                    entered: r.bool("event_entered")?,
                    at: r.u64()?,
                });
            }
            Body::Tracked(TrackedResponse {
                raw,
                smoothed_x,
                smoothed_y,
                zone,
                events,
            })
        }
        kind::STATS_REPLY => Body::Stats(StatsResponse {
            queue_depth: r.u64()?,
            in_flight: r.u64()?,
            shards: r.u64()?,
            accepted: r.u64()?,
            completed: r.u64()?,
            shed_overload: r.u64()?,
            shed_quota: r.u64()?,
            bad_frames: r.u64()?,
        }),
        kind::REJECTED => {
            let reason = RejectReason::from_tag(r.u8()?)?;
            Body::Rejected(Rejection {
                reason,
                detail: r.string("detail")?,
            })
        }
        kind::SERVER_ERROR => Body::ServerError(ServerErrorResponse {
            detail: r.string("detail")?,
        }),
        other => return Err(NetError::Kind(other)),
    };
    r.finish()?;
    Ok(body)
}

// ---------------------------------------------------------------------
// Stream I/O
// ---------------------------------------------------------------------

/// Writes one frame to a blocking stream.
///
/// # Errors
///
/// [`NetError::Oversized`] from encoding, [`NetError::Io`] from the
/// transport.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<(), NetError> {
    let bytes = frame.encode()?;
    w.write_all(&bytes)?;
    Ok(())
}

/// Reads one complete frame from a blocking stream (header, then
/// exactly the declared payload).
///
/// # Errors
///
/// A typed decode [`NetError`] for malformed bytes, [`NetError::Io`]
/// for transport failures (including EOF mid-frame).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, NetError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let header = Header::decode(&header)?;
    let mut payload = vec![0u8; header.payload_len as usize];
    r.read_exact(&mut payload)?;
    let body = decode_body(header.kind, &payload)?;
    Ok(Frame {
        id: header.id,
        body,
    })
}
