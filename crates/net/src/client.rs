//! Blocking wire-protocol client.
//!
//! [`NetClient`] is the simple RPC surface: one request in flight,
//! reply correlated by id. For open-loop pipelined traffic (many
//! requests outstanding, replies consumed concurrently) use
//! [`NetClient::split`], which hands the two socket halves to separate
//! threads — that is what the load generator does.

use crate::frame::{read_frame, write_frame, Body, Frame, WireShard};
use crate::server::{Endpoint, Stream};
use crate::NetError;
use std::io::BufReader;

/// A blocking connection to a [`crate::NetServer`].
pub struct NetClient {
    reader: BufReader<Stream>,
    writer: Stream,
    next_id: u64,
}

impl NetClient {
    /// Connects to `endpoint` (TCP or Unix).
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the connect or socket split fails.
    pub fn connect(endpoint: &Endpoint) -> Result<Self, NetError> {
        let stream = endpoint.connect()?;
        let writer = stream.try_clone()?;
        Ok(NetClient {
            reader: BufReader::new(stream),
            writer,
            next_id: 1,
        })
    }

    /// Sends one request body and blocks for its reply (correlated by
    /// id, so a stray frame for another id is skipped rather than
    /// misattributed).
    ///
    /// # Errors
    ///
    /// Encode/transport/decode [`NetError`]s. A typed rejection or
    /// serve error from the server is a *successful* call — it comes
    /// back as the reply's [`Body`].
    pub fn call(&mut self, body: Body) -> Result<Body, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.writer, &Frame { id, body })?;
        loop {
            let reply = read_frame(&mut self.reader)?;
            // id 0 is the server's "no trustworthy request id" marker
            // on a bad-frame rejection: surface it to whoever is
            // waiting rather than looping forever on a closing stream.
            if reply.id == id || reply.id == 0 {
                return Ok(reply.body);
            }
        }
    }

    /// Convenience: localize one fingerprint.
    ///
    /// # Errors
    ///
    /// As [`NetClient::call`].
    pub fn localize(
        &mut self,
        tenant: &str,
        shard: WireShard,
        fingerprint: Vec<f64>,
    ) -> Result<Body, NetError> {
        self.call(Body::Localize(crate::frame::LocalizeRequest {
            tenant: tenant.to_string(),
            shard,
            fingerprint,
        }))
    }

    /// Convenience: read the server's stats frame.
    ///
    /// # Errors
    ///
    /// As [`NetClient::call`].
    pub fn stats(&mut self) -> Result<Body, NetError> {
        self.call(Body::StatsRequest)
    }

    /// Splits into independent send/receive halves for pipelined use:
    /// the sender stamps ids, the receiver reads replies in whatever
    /// order the server finishes them.
    pub fn split(self) -> (NetSender, NetReceiver) {
        (
            NetSender {
                writer: self.writer,
                next_id: self.next_id,
            },
            NetReceiver {
                reader: self.reader,
            },
        )
    }
}

/// The write half of a pipelined connection.
pub struct NetSender {
    writer: Stream,
    next_id: u64,
}

impl NetSender {
    /// Sends one request without waiting; returns the id its reply will
    /// carry.
    ///
    /// # Errors
    ///
    /// Encode/transport [`NetError`]s.
    pub fn send(&mut self, body: Body) -> Result<u64, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.writer, &Frame { id, body })?;
        Ok(id)
    }
}

/// The read half of a pipelined connection.
pub struct NetReceiver {
    reader: BufReader<Stream>,
}

impl NetReceiver {
    /// Blocks for the next reply frame.
    ///
    /// # Errors
    ///
    /// Transport/decode [`NetError`]s (EOF once the server closes).
    pub fn recv(&mut self) -> Result<Frame, NetError> {
        read_frame(&mut self.reader)
    }
}
