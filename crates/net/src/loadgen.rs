//! Open-loop, multi-tenant load generation.
//!
//! **Open loop** means arrivals follow a schedule, not the server:
//! each tenant's sender thread draws Poisson inter-arrival gaps
//! (exponential, from a seeded SplitMix64 stream) and writes request
//! frames at those instants whether or not earlier replies have come
//! back. A closed-loop client slows down when the server does —
//! coordinated omission — and measures flattering latencies at
//! saturation; an open-loop generator keeps offering load past
//! capacity, which is the only way goodput-vs-offered-load curves and
//! shed rates mean anything.
//!
//! Each tenant runs one pipelined connection: the sender half paces and
//! stamps ids, a receiver half consumes replies in completion order and
//! correlates ids back to send times (handed over an in-process channel,
//! so the receiver observes every send record before its reply can
//! race it). Every request gets exactly one reply — served, rejected,
//! or typed serve error — so the receiver knows precisely when it is
//! done.

use crate::client::NetClient;
use crate::frame::{Body, LocalizeRequest, WireShard};
use crate::server::Endpoint;
use crate::NetError;
use std::collections::BTreeMap;
use std::sync::mpsc::{self, TryRecvError};
use std::time::{Duration, Instant};

/// One tenant's offered load.
#[derive(Debug, Clone)]
pub struct TenantLoad {
    /// Tenant name (the admission-control billing key).
    pub tenant: String,
    /// Mean arrival rate, requests per second (Poisson).
    pub rate: f64,
    /// RNG seed for this tenant's arrival stream.
    pub seed: u64,
}

/// An open-loop run: how long, which tenants, what requests.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Wall-clock duration of the arrival schedule.
    pub duration: Duration,
    /// Tenants generating concurrently, each on its own connection.
    pub tenants: Vec<TenantLoad>,
    /// Shards to target, round-robin per tenant.
    pub shards: Vec<WireShard>,
    /// Fingerprint template sent with every request.
    pub fingerprint: Vec<f64>,
}

/// What one tenant experienced.
#[derive(Debug, Clone, Default)]
pub struct TenantOutcome {
    /// Tenant name.
    pub tenant: String,
    /// Requests the schedule offered (sent on the wire).
    pub offered: u64,
    /// Requests served with a fix (goodput).
    pub served: u64,
    /// Typed `Rejected{Overloaded}` replies.
    pub shed_overload: u64,
    /// Typed `Rejected{TenantQuota}` replies.
    pub shed_quota: u64,
    /// Typed serve-error replies (unknown shard, shutdown, ...).
    pub errors: u64,
    /// Send-to-reply latency of each **served** request, microseconds,
    /// in completion order.
    pub latencies_us: Vec<u64>,
}

impl TenantOutcome {
    /// Served fraction of offered load.
    pub fn goodput_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.served as f64 / self.offered as f64
        }
    }
}

/// SplitMix64: tiny, seedable, uniform — all the arrival schedule needs.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// One exponential inter-arrival gap for a Poisson process at `rate`/s.
fn exp_gap(rate: f64, rng: &mut SplitMix64) -> Duration {
    // 1 - u is in (0, 1], so the log is finite and non-positive.
    let gap = -(1.0 - rng.next_f64()).ln() / rate;
    Duration::from_secs_f64(gap)
}

/// Runs the open-loop schedule against `endpoint` and returns one
/// outcome per tenant (same order as [`LoadConfig::tenants`]).
///
/// # Errors
///
/// [`NetError::Io`] for connect/transport failures; a rate or shard
/// list that cannot generate load is reported as
/// [`std::io::ErrorKind::InvalidInput`].
pub fn run_open_loop(
    endpoint: &Endpoint,
    cfg: &LoadConfig,
) -> Result<Vec<TenantOutcome>, NetError> {
    if cfg.shards.is_empty() || !cfg.tenants.iter().all(|t| t.rate > 0.0) {
        return Err(NetError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "load config needs at least one shard and positive tenant rates",
        )));
    }
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for tenant in &cfg.tenants {
            let client = NetClient::connect(endpoint)?;
            handles.push(scope.spawn(move || run_tenant(client, tenant, cfg)));
        }
        let mut outcomes = Vec::with_capacity(handles.len());
        for handle in handles {
            match handle.join() {
                Ok(result) => outcomes.push(result?),
                Err(_) => {
                    return Err(NetError::Io(std::io::Error::other(
                        "load generator thread panicked",
                    )))
                }
            }
        }
        Ok(outcomes)
    })
}

/// Classifies one reply into the tenant's outcome. `stamp` was taken
/// just before the request's socket write, `recv_at` just after its
/// reply was read, so the difference is the full send-to-reply latency
/// (`Instant::duration_since` saturates to zero, so a pathological
/// clock cannot panic here).
fn settle(outcome: &mut TenantOutcome, stamp: Instant, recv_at: Instant, body: Body) {
    match body {
        Body::Fix(_) => {
            outcome.served += 1;
            outcome.latencies_us.push(
                recv_at
                    .duration_since(stamp)
                    .as_micros()
                    .min(u128::from(u64::MAX)) as u64,
            );
        }
        Body::Rejected(r) => match r.reason {
            crate::frame::RejectReason::Overloaded => outcome.shed_overload += 1,
            crate::frame::RejectReason::TenantQuota => outcome.shed_quota += 1,
            crate::frame::RejectReason::BadFrame => outcome.errors += 1,
        },
        _ => outcome.errors += 1,
    }
}

/// One tenant's sender + receiver pair over one pipelined connection.
fn run_tenant(
    client: NetClient,
    load: &TenantLoad,
    cfg: &LoadConfig,
) -> Result<TenantOutcome, NetError> {
    let (mut sender, mut receiver) = client.split();
    let (meta_tx, meta_rx) = mpsc::channel::<(u64, Instant)>();

    std::thread::scope(|scope| {
        let send_half = scope.spawn(move || -> Result<u64, NetError> {
            let mut rng = SplitMix64(load.seed);
            let mut offered = 0u64;
            let started = Instant::now();
            let mut next = Duration::ZERO;
            loop {
                next += exp_gap(load.rate, &mut rng);
                if next >= cfg.duration {
                    break;
                }
                let elapsed = started.elapsed();
                if next > elapsed {
                    std::thread::sleep(next - elapsed);
                }
                let shard = cfg.shards[(offered as usize) % cfg.shards.len()];
                let body = Body::Localize(LocalizeRequest {
                    tenant: load.tenant.clone(),
                    shard,
                    fingerprint: cfg.fingerprint.clone(),
                });
                // The send record trails the socket write (the id is
                // only known after it), so a fast reply can beat its
                // record to the receiver — the receiver's early-reply
                // buffer absorbs that race. The stamp itself is taken
                // before the write so it bounds the true send time.
                let stamp = Instant::now();
                let id = sender.send(body)?;
                let _ = meta_tx.send((id, stamp));
                offered += 1;
            }
            drop(meta_tx);
            Ok(offered)
        });

        let mut outcome = TenantOutcome {
            tenant: load.tenant.clone(),
            ..TenantOutcome::default()
        };
        // Requests whose send record arrived but whose reply has not.
        let mut pending: BTreeMap<u64, Instant> = BTreeMap::new();
        // Replies that beat their own send record over the in-process
        // channel (an immediate shed can outrun it); settled as soon as
        // the record shows up, with the latency measured to the moment
        // the reply was actually read.
        let mut early: BTreeMap<u64, (Instant, Body)> = BTreeMap::new();
        let mut meta_open = true;
        let absorb = |id: u64,
                      stamp: Instant,
                      pending: &mut BTreeMap<u64, Instant>,
                      early: &mut BTreeMap<u64, (Instant, Body)>,
                      outcome: &mut TenantOutcome| {
            match early.remove(&id) {
                Some((recv_at, body)) => settle(outcome, stamp, recv_at, body),
                None => {
                    pending.insert(id, stamp);
                }
            }
        };
        loop {
            // Absorb new send records without blocking.
            loop {
                match meta_rx.try_recv() {
                    Ok((id, stamp)) => {
                        absorb(id, stamp, &mut pending, &mut early, &mut outcome);
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        meta_open = false;
                        break;
                    }
                }
            }
            if pending.is_empty() {
                if !meta_open {
                    break;
                }
                // Nothing outstanding: block for the next send record
                // (or the sender finishing) instead of the socket.
                match meta_rx.recv() {
                    Ok((id, stamp)) => {
                        absorb(id, stamp, &mut pending, &mut early, &mut outcome);
                    }
                    Err(_) => {
                        meta_open = false;
                    }
                }
                continue;
            }
            let frame = receiver.recv()?;
            let recv_at = Instant::now();
            match pending.remove(&frame.id) {
                Some(stamp) => settle(&mut outcome, stamp, recv_at, frame.body),
                // Not pending: either the send record is still in the
                // channel (park the reply until it lands) or the frame
                // is a stray the schedule never sent (id 0 bad-frame);
                // strays sit in the buffer without blocking termination.
                None => {
                    early.insert(frame.id, (recv_at, frame.body));
                }
            }
        }

        match send_half.join() {
            Ok(offered) => outcome.offered = offered?,
            Err(_) => {
                return Err(NetError::Io(std::io::Error::other(
                    "tenant sender thread panicked",
                )))
            }
        }
        Ok(outcome)
    })
}
