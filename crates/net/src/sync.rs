//! Poisoning-tolerant lock helpers (same contract as `noble-serve`'s:
//! a panic stays contained, the edge keeps serving; sound because every
//! critical section here leaves its state consistent at every unwind
//! point — single assignments and collection ops only).

use std::sync::{Condvar, Mutex, MutexGuard};

/// Locks `mutex`, recovering the guard from a poisoned lock instead of
/// propagating the panic to this thread.
pub fn relock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// [`Condvar::wait`] with the same poisoning recovery as [`relock`].
pub fn rewait<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar
        .wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}
