//! Typed network-edge errors.
//!
//! The decoder's contract is that **every** malformed input — truncated,
//! corrupted, oversized, wrong version, trailing garbage — maps to a
//! variant here, never a panic (pinned by the `frame_codec` fuzz suite).

use std::fmt;

/// Everything that can go wrong on the wire.
#[derive(Debug)]
pub enum NetError {
    /// The frame did not start with the `NB` magic — the peer is not
    /// speaking this protocol (or the stream lost sync).
    BadMagic([u8; 2]),
    /// The peer speaks a protocol version this build does not.
    Version(u8),
    /// Unknown frame kind byte.
    Kind(u8),
    /// Declared payload length exceeds [`crate::MAX_PAYLOAD`] — refused
    /// before allocating, so a hostile header cannot balloon memory.
    Oversized { len: u32, cap: u32 },
    /// The payload ended before a field was complete.
    Truncated {
        /// Bytes the next field needed.
        need: usize,
        /// Bytes that were left.
        have: usize,
    },
    /// The payload decoded cleanly but bytes were left over — a framing
    /// bug on the peer, not silently ignorable.
    TrailingBytes(usize),
    /// A string field held invalid UTF-8.
    Utf8 { field: &'static str },
    /// An enum tag byte held an undefined value.
    Tag { field: &'static str, value: u8 },
    /// A declared element count is impossible for the bytes present
    /// (refused before allocating `count * size`).
    Count { field: &'static str, count: u32 },
    /// Transport failure (socket read/write/connect).
    Io(std::io::Error),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::BadMagic(m) => write!(f, "bad frame magic {m:02x?} (expected \"NB\")"),
            NetError::Version(v) => write!(f, "unsupported protocol version {v}"),
            NetError::Kind(k) => write!(f, "unknown frame kind 0x{k:02x}"),
            NetError::Oversized { len, cap } => {
                write!(f, "payload of {len} bytes exceeds the {cap}-byte cap")
            }
            NetError::Truncated { need, have } => {
                write!(
                    f,
                    "payload truncated: next field needs {need} bytes, {have} left"
                )
            }
            NetError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after a complete payload")
            }
            NetError::Utf8 { field } => write!(f, "field `{field}` is not valid UTF-8"),
            NetError::Tag { field, value } => {
                write!(f, "field `{field}` has undefined tag 0x{value:02x}")
            }
            NetError::Count { field, count } => {
                write!(
                    f,
                    "field `{field}` declares {count} elements, more than the payload holds"
                )
            }
            NetError::Io(e) => write!(f, "transport: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl NetError {
    /// Whether this is a malformed-frame error (versus a transport
    /// failure): the class the server answers with a typed
    /// [`crate::RejectReason::BadFrame`] rejection before closing the
    /// stream (framing cannot resynchronize after corruption).
    pub fn is_bad_frame(&self) -> bool {
        !matches!(self, NetError::Io(_))
    }
}
