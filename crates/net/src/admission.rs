//! Admission control: bounded per-tenant queues, a global overload
//! watermark, and deficit-round-robin dispatch.
//!
//! The state machine per request:
//!
//! ```text
//!                       offer()
//!   decoded frame ───────────────► per-tenant bounded queue
//!        │    │                          │
//!        │    │ tenant queue full        │ DRR dispatch
//!        │    ▼                          ▼
//!        │  Rejected{TenantQuota}     service worker ──► reply frame
//!        │
//!        │ global watermark exceeded
//!        ▼
//!      Rejected{Overloaded}
//! ```
//!
//! **Watermark.** `offer` admits while `queued + serve_in_flight <
//! max_queue`, where `serve_in_flight` is the serving tier's live gauge
//! ([`noble_serve::ServeClient::server_stats`]) — so the shed decision
//! sees work the workers have already pushed into the batch server, not
//! just what is still waiting here. Past the watermark every request is
//! shed with a typed [`RejectReason::Overloaded`] *before* any queue
//! grows, which is what keeps accepted-request latency bounded under
//! open-loop overload: the queues cannot build beyond the watermark, so
//! queueing delay is capped at roughly `max_queue / service_rate`.
//!
//! **Per-tenant bound.** Each tenant's queue is capped at
//! `tenant_queue`; a tenant whose arrival rate exceeds its drain rate
//! fills its own queue and sheds with [`RejectReason::TenantQuota`]
//! without consuming the global watermark headroom other tenants need.
//! The quota check runs *before* the global check so a hot tenant's
//! excess is always billed to the tenant, not the server.
//!
//! **Fairness.** Dispatch is deficit round robin with unit request cost:
//! each active tenant in turn gets up to `quantum` requests served
//! before the turn rotates, so a tenant offering 10x the load gets at
//! most `quantum` consecutive grants before every other active tenant
//! gets its own `quantum` — service is near-equal across backlogged
//! tenants regardless of arrival ratios (pinned by the
//! `overload_behavior` fairness test).

use crate::frame::{Frame, RejectReason, Rejection};
use crate::sync::{relock, rewait};
use noble_serve::ShardKey;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};

/// One admitted request, parked until a service worker picks it up.
pub(crate) struct WorkItem {
    /// Request id, echoed on the reply frame.
    pub id: u64,
    /// The originating connection's outbox.
    pub reply: Sender<Frame>,
    /// What to execute.
    pub request: Request,
}

/// The serving work a frame asked for, with wire types already lowered
/// to serving types.
pub(crate) enum Request {
    Localize {
        key: ShardKey,
        fingerprint: Vec<f64>,
    },
    Tracked {
        device: u64,
        key: ShardKey,
        at: u64,
        fingerprint: Vec<f64>,
    },
}

/// Why `offer` refused a request.
pub(crate) enum Refusal {
    /// Shed with a typed wire rejection.
    Reject(Rejection),
    /// The server is stopping; the caller answers with the typed
    /// shutting-down serve error.
    ShuttingDown,
}

/// Monotone edge counters (lock-free; read by the Stats frame).
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub accepted: AtomicU64,
    pub completed: AtomicU64,
    pub shed_overload: AtomicU64,
    pub shed_quota: AtomicU64,
    pub bad_frames: AtomicU64,
}

/// One tenant's bounded queue plus its DRR turn state.
#[derive(Default)]
struct TenantQueue {
    queue: VecDeque<WorkItem>,
    /// Requests left in the tenant's current turn; `0` = not mid-turn.
    deficit: u32,
}

/// Scheduler state under one short-held lock.
struct Sched {
    tenants: BTreeMap<String, TenantQueue>,
    /// Round-robin ring of tenants with non-empty queues.
    order: VecDeque<String>,
    /// Total requests parked across all tenant queues.
    queued: usize,
    stopped: bool,
}

/// The admission gate + DRR dispatcher between connection readers and
/// service workers.
pub(crate) struct Admission {
    max_queue: usize,
    tenant_queue: usize,
    quantum: u32,
    state: Mutex<Sched>,
    available: Condvar,
    pub(crate) counters: Counters,
}

impl Admission {
    pub(crate) fn new(max_queue: usize, tenant_queue: usize, quantum: u32) -> Self {
        Admission {
            max_queue: max_queue.max(1),
            tenant_queue: tenant_queue.max(1),
            quantum: quantum.max(1),
            state: Mutex::new(Sched {
                tenants: BTreeMap::new(),
                order: VecDeque::new(),
                queued: 0,
                stopped: false,
            }),
            available: Condvar::new(),
            counters: Counters::default(),
        }
    }

    /// Requests currently parked in tenant queues.
    pub(crate) fn depth(&self) -> usize {
        relock(&self.state).queued
    }

    /// Admits or sheds one request. `serve_in_flight` is the serving
    /// tier's live in-flight gauge, folded into the global watermark so
    /// shedding accounts for work already dispatched downstream.
    pub(crate) fn offer(
        &self,
        tenant: &str,
        serve_in_flight: u64,
        item: WorkItem,
    ) -> Result<(), Refusal> {
        let mut s = relock(&self.state);
        if s.stopped {
            return Err(Refusal::ShuttingDown);
        }
        let tenant_depth = s.tenants.get(tenant).map_or(0, |t| t.queue.len());
        if tenant_depth >= self.tenant_queue {
            self.counters.shed_quota.fetch_add(1, Ordering::Relaxed);
            return Err(Refusal::Reject(Rejection {
                reason: RejectReason::TenantQuota,
                detail: format!(
                    "tenant `{tenant}` queue full ({tenant_depth}/{})",
                    self.tenant_queue
                ),
            }));
        }
        if s.queued as u64 + serve_in_flight >= self.max_queue as u64 {
            self.counters.shed_overload.fetch_add(1, Ordering::Relaxed);
            return Err(Refusal::Reject(Rejection {
                reason: RejectReason::Overloaded,
                detail: format!(
                    "overloaded: {} queued + {serve_in_flight} in flight >= {} watermark",
                    s.queued, self.max_queue
                ),
            }));
        }
        let tq = s.tenants.entry(tenant.to_string()).or_default();
        let newly_active = tq.queue.is_empty();
        tq.queue.push_back(item);
        if newly_active {
            s.order.push_back(tenant.to_string());
        }
        s.queued += 1;
        self.counters.accepted.fetch_add(1, Ordering::Relaxed);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next request under DRR order; `None` once the
    /// dispatcher is stopped and drained.
    pub(crate) fn next(&self) -> Option<WorkItem> {
        let mut s = relock(&self.state);
        loop {
            if let Some(item) = Self::pop(&mut s, self.quantum) {
                return Some(item);
            }
            if s.stopped {
                return None;
            }
            s = rewait(&self.available, s);
        }
    }

    /// One DRR grant: serve the front tenant's queue until its deficit
    /// or queue runs out, then rotate the ring.
    fn pop(s: &mut Sched, quantum: u32) -> Option<WorkItem> {
        while let Some(tenant) = s.order.front().cloned() {
            let Some(tq) = s.tenants.get_mut(&tenant) else {
                s.order.pop_front();
                continue;
            };
            let Some(item) = tq.queue.pop_front() else {
                // Queue drained outside a turn (stop swept it).
                tq.deficit = 0;
                s.order.pop_front();
                continue;
            };
            if tq.deficit == 0 {
                // Start of this tenant's turn.
                tq.deficit = quantum;
            }
            tq.deficit -= 1;
            s.queued -= 1;
            if tq.deficit == 0 || tq.queue.is_empty() {
                // Turn over: rotate to the back of the ring (still
                // active) or leave the ring (drained).
                tq.deficit = 0;
                s.order.pop_front();
                if !tq.queue.is_empty() {
                    s.order.push_back(tenant);
                }
            }
            return Some(item);
        }
        None
    }

    /// Stops the dispatcher: wakes every waiting worker (they exit once
    /// the queues are dry) and hands back everything still parked so the
    /// caller can answer each with a typed shutting-down reply instead
    /// of dropping it.
    pub(crate) fn stop(&self) -> Vec<WorkItem> {
        let mut s = relock(&self.state);
        s.stopped = true;
        let mut leftover = Vec::new();
        for tq in s.tenants.values_mut() {
            tq.deficit = 0;
            leftover.extend(tq.queue.drain(..));
        }
        s.order.clear();
        s.queued = 0;
        self.available.notify_all();
        leftover
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn item(id: u64) -> (WorkItem, std::sync::mpsc::Receiver<Frame>) {
        let (tx, rx) = mpsc::channel();
        (
            WorkItem {
                id,
                reply: tx,
                request: Request::Localize {
                    key: ShardKey::building(0),
                    fingerprint: vec![],
                },
            },
            rx,
        )
    }

    #[test]
    fn drr_alternates_between_backlogged_tenants() {
        let adm = Admission::new(1000, 1000, 2);
        let mut rxs = Vec::new();
        for i in 0..6 {
            let (it, rx) = item(i);
            adm.offer("hot", 0, it).ok().unwrap();
            rxs.push(rx);
        }
        for i in 6..8 {
            let (it, rx) = item(i);
            adm.offer("quiet", 0, it).ok().unwrap();
            rxs.push(rx);
        }
        // quantum=2: hot gets 2, quiet gets 2, hot gets the rest.
        let order: Vec<u64> = (0..8).map(|_| adm.next().unwrap().id).collect();
        assert_eq!(order, vec![0, 1, 6, 7, 2, 3, 4, 5]);
    }

    #[test]
    fn tenant_quota_binds_before_the_global_watermark() {
        let adm = Admission::new(100, 2, 1);
        let mut rxs = Vec::new();
        for i in 0..2 {
            let (it, rx) = item(i);
            adm.offer("t", 0, it).ok().unwrap();
            rxs.push(rx);
        }
        let (it, _rx) = item(2);
        match adm.offer("t", 0, it) {
            Err(Refusal::Reject(r)) => assert_eq!(r.reason, RejectReason::TenantQuota),
            _ => panic!("expected quota rejection"),
        }
        // A different tenant still has room.
        let (it, _rx2) = item(3);
        assert!(adm.offer("other", 0, it).is_ok());
    }

    #[test]
    fn watermark_counts_serve_inflight() {
        let adm = Admission::new(10, 100, 1);
        let (it, _rx) = item(0);
        match adm.offer("t", 10, it) {
            Err(Refusal::Reject(r)) => assert_eq!(r.reason, RejectReason::Overloaded),
            _ => panic!("expected overload rejection"),
        }
    }

    #[test]
    fn stop_hands_back_parked_items_and_unblocks_next() {
        let adm = Admission::new(100, 100, 1);
        let (it, _rx) = item(7);
        adm.offer("t", 0, it).ok().unwrap();
        let leftover = adm.stop();
        assert_eq!(leftover.len(), 1);
        assert_eq!(leftover[0].id, 7);
        assert!(adm.next().is_none());
        assert!(matches!(
            adm.offer("t", 0, item(8).0),
            Err(Refusal::ShuttingDown)
        ));
    }
}
