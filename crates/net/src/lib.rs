//! # noble-net — the wire-protocol network edge
//!
//! Production localization traffic does not arrive over in-process
//! channels: it arrives over sockets, from many tenants at once, at
//! rates the server does not control. This crate is that edge for the
//! NObLe serving stack:
//!
//! - [`frame`]: a length-prefixed, versioned binary protocol (16-byte
//!   header, typed payloads for localize / tracked-submit / stats /
//!   rejection / error). The decoder is bounds-checked end to end —
//!   every truncation, corruption, bogus count or trailing byte is a
//!   typed [`NetError`], never a panic, and `f64` payloads round-trip
//!   **bit-stably** (pinned by the `frame_codec` fuzz suite).
//! - [`NetServer`]: loopback TCP or Unix-socket front end over a
//!   [`Backend`] ([`noble_serve::BatchServer`] client for stateless
//!   fixes, [`noble_serve::TrackingServer`] client for per-device
//!   tracking). Std-only threading: one reader + one writer thread per
//!   connection, a fixed service-worker pool behind the admission gate.
//! - Admission control: bounded per-tenant queues and a global
//!   watermark that folds in the serving tier's live in-flight gauge
//!   ([`noble_serve::ServeClient::server_stats`]). Load past the
//!   watermark is **shed** with typed [`RejectReason::Overloaded`] /
//!   [`RejectReason::TenantQuota`] rejections instead of queuing without
//!   bound — that is what keeps accepted-request tail latency flat past
//!   saturation. Dispatch is deficit round robin, so one hot tenant
//!   cannot starve the rest (pinned by `overload_behavior`).
//! - [`loadgen`]: an **open-loop** Poisson load generator (arrivals on
//!   a schedule, never gated on replies — no coordinated omission) for
//!   multi-tenant overload experiments; `exp_net` in `noble-bench`
//!   drives it to produce goodput-vs-offered-load curves.
//!
//! ```no_run
//! use noble_net::{Backend, Body, NetClient, NetConfig, NetServer, WireShard};
//! use noble_serve::{BatchConfig, BatchServer, RegistryConfig, ShardedRegistry};
//! use noble::wifi::WifiNobleConfig;
//! use noble_datasets::{uji_campaign, UjiConfig};
//!
//! let campaign = uji_campaign(&UjiConfig::small())?;
//! let registry = ShardedRegistry::train_wifi(
//!     &campaign,
//!     &WifiNobleConfig::small(),
//!     &RegistryConfig::default(),
//! )?;
//! let server = BatchServer::start(registry, BatchConfig::default())?;
//! let edge = NetServer::bind_tcp(
//!     "127.0.0.1:0".parse()?,
//!     Backend::Fix(server.client()),
//!     NetConfig::default(),
//! )?;
//!
//! let mut client = NetClient::connect(edge.endpoint())?;
//! let shard = WireShard { building: 0, floor: None };
//! match client.localize("tenant-a", shard, vec![0.0; campaign.num_waps()])? {
//!     Body::Fix(fix) => println!("device at ({}, {})", fix.x, fix.y),
//!     other => println!("refused: {other:?}"),
//! }
//! edge.shutdown();
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod admission;
mod client;
mod error;
pub mod frame;
pub mod loadgen;
mod server;
mod sync;

pub use client::{NetClient, NetReceiver, NetSender};
pub use error::NetError;
pub use frame::{
    Body, FixResponse, Frame, Header, LocalizeRequest, RejectReason, Rejection,
    ServerErrorResponse, StatsResponse, TrackedResponse, TrackedSubmitRequest, WireShard,
    WireZoneEvent, HEADER_LEN, MAGIC, MAX_PAYLOAD, VERSION,
};
pub use loadgen::{run_open_loop, LoadConfig, TenantLoad, TenantOutcome};
pub use server::{Backend, Endpoint, NetConfig, NetServer, Stream};
