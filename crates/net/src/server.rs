//! The socket front end: listener, per-connection reader/writer
//! threads, and the service worker pool behind the admission gate.
//!
//! Threading model (std-only, no async runtime):
//!
//! ```text
//!  accept thread ──► per-connection reader thread
//!                        │ decode + admission                outbox
//!                        ├── Stats ────────────────────────► writer ──► socket
//!                        ├── shed ──► Rejected frame ──────►
//!                        └── admit ─► tenant queue
//!                                        │ DRR
//!                              service workers (N) ─ reply ─►
//!                                        │
//!                                   BatchServer / TrackingServer
//! ```
//!
//! Each connection gets one reader and one writer thread; replies flow
//! through an unbounded outbox channel, so a service worker never blocks
//! on a slow peer's socket. `Stats` requests are answered on the reader
//! thread, **outside** admission — observability keeps working while the
//! server sheds. After a malformed frame the reader answers one typed
//! [`RejectReason::BadFrame`] rejection and closes (length-prefixed
//! framing cannot resynchronize once a length field is untrusted).
//!
//! [`RejectReason::BadFrame`]: crate::RejectReason::BadFrame

use crate::admission::{Admission, Refusal, Request, WorkItem};
use crate::frame::{
    read_frame, write_frame, Body, FixResponse, Frame, RejectReason, Rejection,
    ServerErrorResponse, StatsResponse, TrackedResponse, WireZoneEvent,
};
use crate::NetError;
use noble_serve::{ServeClient, ServeError, TrackingClient, ZoneEventKind};
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Admission and pool knobs for a [`NetServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// Global overload watermark: requests admitted while
    /// `parked + serving-tier in-flight < max_queue`; everything past it
    /// is shed with [`RejectReason::Overloaded`]. Bounds accepted-request
    /// queueing delay at roughly `max_queue / service rate`.
    pub max_queue: usize,
    /// Per-tenant queue capacity; a tenant past it sheds with
    /// [`RejectReason::TenantQuota`] without consuming global headroom.
    /// Fairness note: keep `max_queue >= tenant_queue * expected
    /// tenants`, or a hot tenant can exhaust the global watermark before
    /// its own quota binds.
    pub tenant_queue: usize,
    /// Deficit-round-robin grant per tenant turn (unit request cost).
    pub quantum: u32,
    /// Service worker threads executing admitted requests against the
    /// serving tier (this is the edge's concurrency into the batch
    /// server, i.e. the in-flight window).
    pub service_threads: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_queue: 1024,
            tenant_queue: 256,
            quantum: 8,
            service_threads: 4,
        }
    }
}

/// Where a [`NetServer`] listens (and what a [`crate::NetClient`]
/// connects to).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// Loopback (or any) TCP address.
    Tcp(SocketAddr),
    /// Unix-domain socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Opens a blocking stream to this endpoint.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the connect fails.
    pub fn connect(&self) -> Result<Stream, NetError> {
        match self {
            Endpoint::Tcp(addr) => Ok(Stream::Tcp(TcpStream::connect(addr)?)),
            Endpoint::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
        }
    }
}

/// One connected socket, TCP or Unix (both blocking, both splittable
/// via [`Stream::try_clone`]).
#[derive(Debug)]
pub enum Stream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain connection.
    Unix(UnixStream),
}

impl Stream {
    /// A second handle onto the same socket (reader/writer split).
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the dup fails.
    pub fn try_clone(&self) -> Result<Stream, NetError> {
        match self {
            Stream::Tcp(s) => Ok(Stream::Tcp(s.try_clone()?)),
            Stream::Unix(s) => Ok(Stream::Unix(s.try_clone()?)),
        }
    }

    fn shutdown(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }

    /// Closes only the read direction. The reader half of a split
    /// connection must use this — a full shutdown would yank the write
    /// direction out from under the writer thread while it still has
    /// earned replies (e.g. the bad-frame rejection) to flush.
    fn shutdown_read(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Read),
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Read),
        };
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }
}

/// The serving tier a [`NetServer`] fronts. Cheap to clone (client
/// handles only); the underlying server's lifetime stays with its
/// owner.
#[derive(Clone)]
pub enum Backend {
    /// Stateless fix serving: `Localize` frames only; `TrackedSubmit`
    /// answers a typed serve error.
    Fix(ServeClient),
    /// Fix serving plus per-device tracking sessions: both request
    /// kinds. `Localize` frames route to the stateless tier underneath
    /// ([`TrackingClient::fix_client`]) without touching any session.
    Tracking(TrackingClient),
}

impl Backend {
    fn fix_client(&self) -> &ServeClient {
        match self {
            Backend::Fix(client) => client,
            Backend::Tracking(tracking) => tracking.fix_client(),
        }
    }

    /// The serving tier's live in-flight gauge (the admission
    /// watermark's downstream component).
    fn serve_in_flight(&self) -> u64 {
        self.fix_client().server_stats().in_flight
    }

    /// Executes one admitted request, blocking until the serving tier
    /// replies; every outcome is a typed response body.
    fn execute(&self, request: Request) -> Body {
        match request {
            Request::Localize { key, fingerprint } => {
                match self.fix_client().submit(key, fingerprint) {
                    Ok(pending) => {
                        let cold = pending.cold();
                        match pending.wait() {
                            Ok(point) => Body::Fix(FixResponse {
                                x: point.x,
                                y: point.y,
                                cold,
                            }),
                            Err(e) => serve_error(&e),
                        }
                    }
                    Err(e) => serve_error(&e),
                }
            }
            Request::Tracked {
                device,
                key,
                at,
                fingerprint,
            } => match self {
                Backend::Fix(_) => Body::ServerError(ServerErrorResponse {
                    detail: "tracking is not enabled on this endpoint".into(),
                }),
                Backend::Tracking(tracking) => {
                    match tracking.submit(device, key, at, fingerprint) {
                        Ok((fix, events)) => Body::Tracked(TrackedResponse {
                            raw: FixResponse {
                                x: fix.raw.x,
                                y: fix.raw.y,
                                cold: fix.cold,
                            },
                            smoothed_x: fix.smoothed.x,
                            smoothed_y: fix.smoothed.y,
                            zone: fix.zone.map(|z| z as u32),
                            events: events
                                .iter()
                                .map(|ev| WireZoneEvent {
                                    device: ev.device,
                                    zone: ev.zone as u32,
                                    entered: ev.kind == ZoneEventKind::Entered,
                                    at: ev.at,
                                })
                                .collect(),
                        }),
                        Err(e) => serve_error(&e),
                    }
                }
            },
        }
    }
}

fn serve_error(e: &ServeError) -> Body {
    Body::ServerError(ServerErrorResponse {
        detail: e.to_string(),
    })
}

/// The running network front end. Owns the accept loop, the service
/// worker pool, and the admission gate; the serving tier behind the
/// [`Backend`] stays owned by the caller.
pub struct NetServer {
    endpoint: Endpoint,
    backend: Backend,
    admission: Arc<Admission>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Binds a TCP endpoint (use port 0 to let the OS pick; the bound
    /// address is [`NetServer::endpoint`]) and starts serving.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the bind or a spawn fails.
    pub fn bind_tcp(addr: SocketAddr, backend: Backend, cfg: NetConfig) -> Result<Self, NetError> {
        let listener = TcpListener::bind(addr)?;
        let endpoint = Endpoint::Tcp(listener.local_addr()?);
        NetServer::start(Listener::Tcp(listener), endpoint, backend, cfg)
    }

    /// Binds a Unix-domain socket at `path` (must not already exist;
    /// removed again at shutdown) and starts serving.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the bind or a spawn fails.
    pub fn bind_unix(
        path: impl Into<PathBuf>,
        backend: Backend,
        cfg: NetConfig,
    ) -> Result<Self, NetError> {
        let path = path.into();
        let listener = UnixListener::bind(&path)?;
        NetServer::start(Listener::Unix(listener), Endpoint::Unix(path), backend, cfg)
    }

    fn start(
        listener: Listener,
        endpoint: Endpoint,
        backend: Backend,
        cfg: NetConfig,
    ) -> Result<Self, NetError> {
        let admission = Arc::new(Admission::new(cfg.max_queue, cfg.tenant_queue, cfg.quantum));
        let stop = Arc::new(AtomicBool::new(false));

        let mut workers = Vec::new();
        for i in 0..cfg.service_threads.max(1) {
            let admission = Arc::clone(&admission);
            let backend = backend.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("noble-net-svc-{i}"))
                    .spawn(move || {
                        while let Some(item) = admission.next() {
                            let body = backend.execute(item.request);
                            // A dropped outbox just means the peer went
                            // away before its reply; not an error.
                            let _ = item.reply.send(Frame { id: item.id, body });
                            admission.counters.completed.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                    .map_err(|e| {
                        NetError::Io(std::io::Error::other(format!(
                            "cannot spawn service worker: {e}"
                        )))
                    })?,
            );
        }

        let accept = {
            let admission = Arc::clone(&admission);
            let backend = backend.clone();
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("noble-net-accept".into())
                .spawn(move || loop {
                    let stream = match listener.accept() {
                        Ok(stream) => stream,
                        Err(_) => {
                            if stop.load(Ordering::Acquire) {
                                return;
                            }
                            continue;
                        }
                    };
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                    let admission = Arc::clone(&admission);
                    let backend = backend.clone();
                    // Connection threads are detached: they exit when
                    // the peer closes (or on write failure after the
                    // server shuts the socket down).
                    let _ = std::thread::Builder::new()
                        .name("noble-net-conn".into())
                        .spawn(move || handle_connection(stream, &admission, &backend));
                })
                .map_err(|e| {
                    NetError::Io(std::io::Error::other(format!(
                        "cannot spawn accept loop: {e}"
                    )))
                })?
        };

        Ok(NetServer {
            endpoint,
            backend,
            admission,
            stop,
            accept: Some(accept),
            workers,
        })
    }

    /// Where this server listens (with the OS-assigned port resolved).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Live edge counters plus the serving tier's gauges — the same
    /// snapshot a `Stats` frame answers with.
    pub fn stats(&self) -> StatsResponse {
        stats_snapshot(&self.admission, &self.backend)
    }

    /// Stops accepting and dispatching: everything parked in admission
    /// queues is answered with a typed shutting-down error (never a
    /// dropped reply channel), workers finish their in-service requests
    /// and exit. Returns the final edge counters. The serving tier
    /// behind the backend is untouched — shut it down separately.
    pub fn shutdown(mut self) -> StatsResponse {
        self.halt();
        self.stats()
    }

    fn halt(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        for item in self.admission.stop() {
            let _ = item.reply.send(Frame {
                id: item.id,
                body: Body::ServerError(ServerErrorResponse {
                    detail: ServeError::ShuttingDown.to_string(),
                }),
            });
        }
        // The blocking accept loop only observes `stop` after an
        // accept returns: poke it with one throwaway connection.
        if let Ok(stream) = self.endpoint.connect() {
            drop(stream);
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.halt();
    }
}

fn stats_snapshot(admission: &Admission, backend: &Backend) -> StatsResponse {
    let serve = backend.fix_client().server_stats();
    let c = &admission.counters;
    StatsResponse {
        queue_depth: admission.depth() as u64 + serve.queue_depth,
        in_flight: serve.in_flight,
        shards: serve.shards as u64,
        accepted: c.accepted.load(Ordering::Relaxed),
        completed: c.completed.load(Ordering::Relaxed),
        shed_overload: c.shed_overload.load(Ordering::Relaxed),
        shed_quota: c.shed_quota.load(Ordering::Relaxed),
        bad_frames: c.bad_frames.load(Ordering::Relaxed),
    }
}

/// One connection's reader loop (runs on the connection thread; the
/// writer half runs on a sibling thread draining the outbox).
fn handle_connection(stream: Stream, admission: &Arc<Admission>, backend: &Backend) {
    let Ok(write_half) = stream.try_clone() else {
        stream.shutdown();
        return;
    };
    let (outbox, replies) = mpsc::channel::<Frame>();
    let writer = std::thread::Builder::new()
        .name("noble-net-write".into())
        .spawn(move || {
            let mut write_half = write_half;
            // Exits when every outbox sender is gone: the reader plus
            // any WorkItems still queued or in service — so a reply
            // already earned is never dropped by a racing close.
            while let Ok(frame) = replies.recv() {
                if write_frame(&mut write_half, &frame).is_err() {
                    break;
                }
            }
            write_half.shutdown();
        });
    let Ok(_writer) = writer else {
        stream.shutdown();
        return;
    };

    let mut reader = BufReader::new(stream);
    loop {
        match read_frame(&mut reader) {
            Ok(frame) => {
                if !dispatch(frame, &outbox, admission, backend) {
                    break;
                }
            }
            Err(e) if e.is_bad_frame() => {
                // One typed rejection, then close: framing cannot
                // resynchronize after a malformed frame. id 0 marks
                // "no trustworthy request id".
                admission
                    .counters
                    .bad_frames
                    .fetch_add(1, Ordering::Relaxed);
                let _ = outbox.send(Frame {
                    id: 0,
                    body: Body::Rejected(Rejection {
                        reason: RejectReason::BadFrame,
                        detail: e.to_string(),
                    }),
                });
                break;
            }
            // Transport error or clean EOF: just close.
            Err(_) => break,
        }
    }
    // Dropping the outbox lets the writer drain pending replies and
    // exit; closing only the read direction guards against a peer that
    // never closes while leaving the write direction to the writer,
    // which still owes the final flush (and closes fully when done).
    drop(outbox);
    reader.into_inner().shutdown_read();
}

/// Routes one decoded request; returns `false` when the connection must
/// close (protocol violation).
fn dispatch(
    frame: Frame,
    outbox: &Sender<Frame>,
    admission: &Arc<Admission>,
    backend: &Backend,
) -> bool {
    let (tenant, request) = match frame.body {
        Body::StatsRequest => {
            // Observability bypasses admission: stats must answer even
            // while the server sheds everything else.
            let _ = outbox.send(Frame {
                id: frame.id,
                body: Body::Stats(stats_snapshot(admission, backend)),
            });
            return true;
        }
        Body::Localize(req) => (
            req.tenant,
            Request::Localize {
                key: req.shard.key(),
                fingerprint: req.fingerprint,
            },
        ),
        Body::TrackedSubmit(req) => (
            req.tenant,
            Request::Tracked {
                device: req.device,
                key: req.shard.key(),
                at: req.at,
                fingerprint: req.fingerprint,
            },
        ),
        // A response kind arriving at the server is a protocol
        // violation: reject and close.
        _ => {
            admission
                .counters
                .bad_frames
                .fetch_add(1, Ordering::Relaxed);
            let _ = outbox.send(Frame {
                id: frame.id,
                body: Body::Rejected(Rejection {
                    reason: RejectReason::BadFrame,
                    detail: "response frame kind sent to server".into(),
                }),
            });
            return false;
        }
    };
    let item = WorkItem {
        id: frame.id,
        reply: outbox.clone(),
        request,
    };
    match admission.offer(&tenant, backend.serve_in_flight(), item) {
        Ok(()) => {}
        Err(Refusal::Reject(rejection)) => {
            let _ = outbox.send(Frame {
                id: frame.id,
                body: Body::Rejected(rejection),
            });
        }
        Err(Refusal::ShuttingDown) => {
            let _ = outbox.send(Frame {
                id: frame.id,
                body: Body::ServerError(ServerErrorResponse {
                    detail: ServeError::ShuttingDown.to_string(),
                }),
            });
        }
    }
    true
}
