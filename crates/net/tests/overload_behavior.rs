//! End-to-end behavior of the network edge under load: typed shedding,
//! per-tenant fairness, observability during overload, bad-frame
//! handling, tracked submits over Unix sockets, and typed shutdown.
//!
//! Capacity is pinned by a `TestLocalizer` that sleeps a fixed delay
//! per batch (`max_batch: 1`, so service rate = 1/delay per shard) —
//! overload is then a choice of arrival rate, not a hope about machine
//! speed. Assertion margins are deliberately loose (2x-plus) so CI
//! scheduling jitter cannot flake them; the *shape* of the behavior
//! (sheds typed, quiet tenant unharmed, every request answered exactly
//! once) is asserted tightly.

use noble::{Localizer, LocalizerInfo, NobleError};
use noble_geo::{Point, Polygon, Zone, ZoneSet};
use noble_linalg::Matrix;
use noble_net::frame::read_frame;
use noble_net::{
    run_open_loop, Backend, Body, LoadConfig, NetClient, NetConfig, NetError, NetServer,
    RejectReason, TenantLoad, TrackedSubmitRequest, WireShard,
};
use noble_serve::{BatchConfig, BatchServer, ShardKey, ShardedRegistry, TrackingServer};
use std::io::Write;
use std::time::Duration;

/// Deterministic-output localizer with a tunable per-batch service
/// delay: the capacity knob for every test below.
struct TestLocalizer {
    dim: usize,
    delay: Duration,
    out: Point,
}

impl Localizer for TestLocalizer {
    fn info(&self) -> LocalizerInfo {
        LocalizerInfo {
            model: "net-test",
            site: "default".into(),
            feature_dim: self.dim,
            class_count: 0,
        }
    }

    fn localize_batch(&mut self, features: &Matrix) -> Result<Vec<Point>, NobleError> {
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        Ok(vec![self.out; features.rows()])
    }
}

fn fix_backend(delay: Duration) -> BatchServer {
    let mut registry = ShardedRegistry::new();
    registry.insert(
        ShardKey::building(0),
        Box::new(TestLocalizer {
            dim: 4,
            delay,
            out: Point::new(5.0, 5.0),
        }),
    );
    let cfg = BatchConfig {
        max_batch: 1,
        latency_budget: Duration::ZERO,
        ..BatchConfig::default()
    };
    BatchServer::start(registry, cfg).expect("batch server starts")
}

const SHARD: WireShard = WireShard {
    building: 0,
    floor: None,
};

/// Under open-loop arrivals well past capacity the edge sheds with
/// typed rejections, keeps answering stats frames, answers every single
/// request exactly once, and keeps accepted-request latency bounded by
/// the watermark (not by the offered load).
#[test]
fn overload_sheds_typed_and_bounds_accepted_latency() {
    let serve = fix_backend(Duration::from_millis(2)); // ~500 req/s capacity
    let edge = NetServer::bind_tcp(
        "127.0.0.1:0".parse().unwrap(),
        Backend::Fix(serve.client()),
        NetConfig {
            max_queue: 16,
            tenant_queue: 16,
            quantum: 4,
            service_threads: 2,
        },
    )
    .expect("edge starts");

    let load = LoadConfig {
        duration: Duration::from_millis(400),
        tenants: vec![TenantLoad {
            tenant: "flood".into(),
            rate: 2500.0, // ~5x capacity
            seed: 7,
        }],
        shards: vec![SHARD],
        fingerprint: vec![0.5; 4],
    };
    let endpoint = edge.endpoint().clone();
    let loadgen = std::thread::spawn(move || run_open_loop(&endpoint, &load));

    // Observability under overload: the stats frame bypasses admission,
    // so it must answer even while the edge sheds.
    let mut observer = NetClient::connect(edge.endpoint()).expect("observer connects");
    let mut saw_load = false;
    for _ in 0..200 {
        match observer.stats().expect("stats answers during overload") {
            Body::Stats(s) if s.accepted > 0 => {
                saw_load = true;
                break;
            }
            Body::Stats(_) => std::thread::sleep(Duration::from_millis(2)),
            other => panic!("stats request answered with {other:?}"),
        }
    }
    assert!(saw_load, "stats frame never observed the running load");

    let outcomes = loadgen.join().expect("loadgen").expect("load run succeeds");
    let o = &outcomes[0];
    let shed = o.shed_overload + o.shed_quota;
    assert!(
        o.offered > 200,
        "open loop offered too little: {}",
        o.offered
    );
    assert_eq!(
        o.served + shed + o.errors,
        o.offered,
        "every offered request must be answered exactly once"
    );
    assert_eq!(o.errors, 0, "no serve errors expected");
    assert!(shed > 0, "5x overload must shed");
    assert!(o.served > 20, "server must keep serving while shedding");

    // Accepted-request latency is bounded by the admission watermark:
    // at most ~16 queued ahead x 2ms service, not by the 5x backlog an
    // unbounded queue would grow. 500ms is a 10x-plus margin for CI.
    let max_us = o.latencies_us.iter().copied().max().unwrap_or(0);
    assert!(
        max_us < 500_000,
        "accepted-request latency unbounded: max {max_us}us"
    );

    // The edge's own counters agree with what the client observed.
    let stats = edge.shutdown();
    assert_eq!(
        stats.accepted, stats.completed,
        "admitted work all answered"
    );
    assert_eq!(stats.shed_overload + stats.shed_quota, shed);
    assert_eq!(stats.bad_frames, 0);
    serve.shutdown();
}

/// A 10x-hot tenant cannot push a quiet tenant below its fair share:
/// the quiet tenant's demand is well under capacity, so DRR plus the
/// per-tenant quota must serve essentially all of it while the hot
/// tenant sheds.
#[test]
fn hot_tenant_cannot_starve_quiet_tenant() {
    let serve = fix_backend(Duration::from_millis(2)); // ~500 req/s capacity
    let edge = NetServer::bind_tcp(
        "127.0.0.1:0".parse().unwrap(),
        Backend::Fix(serve.client()),
        NetConfig {
            max_queue: 4096, // quota, not the global watermark, does the shedding
            tenant_queue: 8,
            quantum: 2,
            service_threads: 2,
        },
    )
    .expect("edge starts");

    let load = LoadConfig {
        duration: Duration::from_millis(600),
        tenants: vec![
            TenantLoad {
                tenant: "quiet".into(),
                rate: 50.0, // well under a fair half of capacity
                seed: 11,
            },
            TenantLoad {
                tenant: "hot".into(),
                rate: 1500.0, // 3x total capacity, 30x the quiet tenant
                seed: 13,
            },
        ],
        shards: vec![SHARD],
        fingerprint: vec![0.5; 4],
    };
    let outcomes = run_open_loop(edge.endpoint(), &load).expect("load run succeeds");
    let quiet = &outcomes[0];
    let hot = &outcomes[1];

    assert!(quiet.offered > 10, "quiet schedule too small");
    assert!(
        quiet.goodput_ratio() >= 0.8,
        "quiet tenant starved: served {}/{} offered",
        quiet.served,
        quiet.offered
    );
    assert!(
        hot.shed_quota > 0,
        "hot tenant's excess must shed on its own quota"
    );
    assert!(
        hot.served > quiet.served,
        "leftover capacity should still flow to the hot tenant"
    );
    // The quiet tenant's own queue never fills, so none of its sheds
    // are quota sheds.
    assert_eq!(quiet.shed_quota, 0, "quiet tenant hit its own quota");

    edge.shutdown();
    serve.shutdown();
}

/// A malformed frame gets one typed `Rejected{BadFrame}` reply (id 0 —
/// the id bytes cannot be trusted) and then the connection closes; the
/// edge counts it.
#[test]
fn bad_frame_gets_typed_rejection_then_close() {
    let serve = fix_backend(Duration::ZERO);
    let edge = NetServer::bind_tcp(
        "127.0.0.1:0".parse().unwrap(),
        Backend::Fix(serve.client()),
        NetConfig::default(),
    )
    .expect("edge starts");

    let mut stream = edge.endpoint().connect().expect("raw connect");
    stream.write_all(&[0xFF; 16]).expect("write garbage");
    let reply = read_frame(&mut stream).expect("typed rejection before close");
    assert_eq!(reply.id, 0, "bad-frame rejection must not invent an id");
    match reply.body {
        Body::Rejected(r) => assert_eq!(r.reason, RejectReason::BadFrame),
        other => panic!("expected BadFrame rejection, got {other:?}"),
    }
    match read_frame(&mut stream) {
        Err(NetError::Io(_)) => {}
        other => panic!("connection must close after a bad frame, got {other:?}"),
    }

    // A tracked submit against a fix-only backend is a typed serve
    // error on a *healthy* connection (the frame itself was fine).
    let mut client = NetClient::connect(edge.endpoint()).expect("connect");
    let reply = client
        .call(Body::TrackedSubmit(TrackedSubmitRequest {
            tenant: "t".into(),
            device: 1,
            shard: SHARD,
            at: 0,
            fingerprint: vec![0.5; 4],
        }))
        .expect("call");
    assert!(
        matches!(reply, Body::ServerError(_)),
        "expected typed serve error, got {reply:?}"
    );

    let stats = edge.shutdown();
    assert_eq!(stats.bad_frames, 1);
    serve.shutdown();
}

/// The full tracked path over a Unix socket: raw fix, smoothed track,
/// zone entry events on the wire, session gauges visible, and the
/// socket file cleaned up at shutdown.
#[test]
fn tracked_submit_round_trips_over_unix_socket() {
    let mut registry = ShardedRegistry::new();
    let out = Point::new(5.0, 5.0);
    registry.insert(
        ShardKey::building(0),
        Box::new(TestLocalizer {
            dim: 4,
            delay: Duration::ZERO,
            out,
        }),
    );
    let zones = ZoneSet::new(vec![Zone::new(
        "lab",
        Polygon::rectangle(0.0, 0.0, 10.0, 10.0).expect("rectangle"),
    )]);
    let tracking = TrackingServer::start(
        registry,
        zones,
        None,
        noble::wifi::tracking::SmootherConfig::default(),
        BatchConfig {
            stability_k: 1, // first in-zone fix commits the entry
            ..BatchConfig::default()
        },
    )
    .expect("tracking server starts");

    let path = std::env::temp_dir().join(format!("noble-net-test-{}.sock", std::process::id()));
    let edge = NetServer::bind_unix(
        &path,
        Backend::Tracking(tracking.client()),
        NetConfig::default(),
    )
    .expect("unix edge starts");

    let mut client = NetClient::connect(edge.endpoint()).expect("connect over unix");
    for at in 0..3u64 {
        let reply = client
            .call(Body::TrackedSubmit(TrackedSubmitRequest {
                tenant: "t".into(),
                device: 42,
                shard: SHARD,
                at,
                fingerprint: vec![0.5; 4],
            }))
            .expect("tracked call");
        let Body::Tracked(t) = reply else {
            panic!("expected tracked reply, got {reply:?}");
        };
        assert_eq!((t.raw.x, t.raw.y), (out.x, out.y));
        assert!(!t.raw.cold);
        assert_eq!(t.zone, Some(0), "fix sits inside the only zone");
        if at == 0 {
            assert_eq!(t.events.len(), 1, "first fix commits the zone entry");
            assert_eq!(t.events[0].device, 42);
            assert!(t.events[0].entered);
        } else {
            assert!(t.events.is_empty(), "no further transitions");
        }
        assert!(t.smoothed_x.is_finite() && t.smoothed_y.is_finite());
    }

    // Plain localize works on the same endpoint (routed past sessions).
    match client.localize("t", SHARD, vec![0.5; 4]).expect("localize") {
        Body::Fix(fix) => assert_eq!((fix.x, fix.y), (out.x, out.y)),
        other => panic!("expected fix, got {other:?}"),
    }

    let sessions = tracking.session_stats();
    assert_eq!(sessions.live, 1);
    assert_eq!(sessions.queued_fixes, 0);
    assert_eq!(sessions.in_flight_fixes, 0);

    edge.shutdown();
    assert!(
        std::fs::metadata(&path).is_err(),
        "socket file must be removed at shutdown"
    );
    tracking.shutdown();
}

/// Shutting down with requests still parked in admission answers each
/// of them with a typed serve error — a pipelined client gets exactly
/// one reply per request, never a silently dropped one.
#[test]
fn shutdown_answers_parked_requests_with_typed_errors() {
    let serve = fix_backend(Duration::from_millis(40));
    let edge = NetServer::bind_tcp(
        "127.0.0.1:0".parse().unwrap(),
        Backend::Fix(serve.client()),
        NetConfig {
            max_queue: 64,
            tenant_queue: 64,
            quantum: 8,
            service_threads: 1,
        },
    )
    .expect("edge starts");

    let (mut sender, mut receiver) = NetClient::connect(edge.endpoint())
        .expect("connect")
        .split();
    const N: usize = 10;
    for _ in 0..N {
        sender
            .send(Body::Localize(noble_net::LocalizeRequest {
                tenant: "t".into(),
                shard: SHARD,
                fingerprint: vec![0.5; 4],
            }))
            .expect("pipelined send");
    }
    let collector = std::thread::spawn(move || {
        let mut fixes = 0;
        let mut typed_errors = 0;
        for _ in 0..N {
            match receiver.recv().expect("every request gets a reply").body {
                Body::Fix(_) => fixes += 1,
                Body::ServerError(_) => typed_errors += 1,
                other => panic!("unexpected reply {other:?}"),
            }
        }
        (fixes, typed_errors)
    });

    // Let the single worker pick up the first request, then stop the
    // edge with the rest still parked.
    std::thread::sleep(Duration::from_millis(20));
    edge.shutdown();

    let (fixes, typed_errors) = collector.join().expect("collector");
    assert_eq!(fixes + typed_errors, N);
    assert!(fixes >= 1, "in-service request should complete");
    assert!(
        typed_errors >= 1,
        "parked requests must get typed shutdown errors, not dropped replies"
    );
    serve.shutdown();
}
