//! Fuzz + pinned-case suite for the wire codec.
//!
//! The contract under test (see `frame.rs` module docs):
//!
//! 1. **Round trips are bit-stable** for every payload kind — including
//!    arbitrary `f64` bit patterns (NaNs, infinities, -0.0), which must
//!    cross the wire with the exact bits the model produced.
//! 2. **Decoding never panics**: every truncation, byte flip, bogus
//!    count, bad tag or random garbage is a typed [`NetError`] (or a
//!    successful decode of coincidentally valid bytes) — never an
//!    abort, never an unbounded allocation.

use noble_net::frame::{read_frame, write_frame};
use noble_net::{
    Body, FixResponse, Frame, Header, LocalizeRequest, NetError, RejectReason, Rejection,
    ServerErrorResponse, StatsResponse, TrackedResponse, TrackedSubmitRequest, WireShard,
    WireZoneEvent, HEADER_LEN, MAGIC, MAX_PAYLOAD, VERSION,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Seed-driven frame sampler
// ---------------------------------------------------------------------
//
// The vendored proptest keeps strategies primitive (ranges, tuples,
// vecs), so structured frames are grown from a (kind, seed) pair
// through a SplitMix64 stream: every u64 the generator draws is fair
// game for ids, counts, and — crucially — raw f64 *bit patterns*, so
// NaN payloads show up constantly instead of never.

struct Gen(u64);

impl Gen {
    fn u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Arbitrary bit pattern reinterpreted as f64: ~0.05% NaN per draw,
    /// plus negative zero, subnormals and infinities over enough cases.
    fn f64_bits(&mut self) -> f64 {
        f64::from_bits(self.u64())
    }

    fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    fn string(&mut self, max_len: usize) -> String {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz-_0123456789\xc3\xa9";
        let len = (self.u64() as usize) % (max_len + 1);
        let mut s = String::new();
        for _ in 0..len {
            // Indexing an even offset keeps the 2-byte é intact.
            let i = (self.u64() as usize) % (ALPHABET.len() - 1);
            if ALPHABET[i] < 0x80 {
                s.push(ALPHABET[i] as char);
            } else {
                s.push('é');
            }
        }
        s
    }

    fn shard(&mut self) -> WireShard {
        WireShard {
            building: self.u64() as u32,
            floor: if self.bool() {
                Some(self.u64() as u32)
            } else {
                None
            },
        }
    }

    fn fingerprint(&mut self, max_len: usize) -> Vec<f64> {
        let len = (self.u64() as usize) % (max_len + 1);
        (0..len).map(|_| self.f64_bits()).collect()
    }
}

fn sample_body(kind: usize, g: &mut Gen) -> Body {
    match kind {
        0 => Body::Localize(LocalizeRequest {
            tenant: g.string(12),
            shard: g.shard(),
            fingerprint: g.fingerprint(16),
        }),
        1 => Body::TrackedSubmit(TrackedSubmitRequest {
            tenant: g.string(12),
            device: g.u64(),
            shard: g.shard(),
            at: g.u64(),
            fingerprint: g.fingerprint(16),
        }),
        2 => Body::StatsRequest,
        3 => Body::Fix(FixResponse {
            x: g.f64_bits(),
            y: g.f64_bits(),
            cold: g.bool(),
        }),
        4 => {
            let events = (0..(g.u64() as usize) % 5)
                .map(|_| WireZoneEvent {
                    device: g.u64(),
                    zone: g.u64() as u32,
                    entered: g.bool(),
                    at: g.u64(),
                })
                .collect();
            Body::Tracked(TrackedResponse {
                raw: FixResponse {
                    x: g.f64_bits(),
                    y: g.f64_bits(),
                    cold: g.bool(),
                },
                smoothed_x: g.f64_bits(),
                smoothed_y: g.f64_bits(),
                zone: if g.bool() { Some(g.u64() as u32) } else { None },
                events,
            })
        }
        5 => Body::Stats(StatsResponse {
            queue_depth: g.u64(),
            in_flight: g.u64(),
            shards: g.u64(),
            accepted: g.u64(),
            completed: g.u64(),
            shed_overload: g.u64(),
            shed_quota: g.u64(),
            bad_frames: g.u64(),
        }),
        6 => Body::Rejected(Rejection {
            reason: match g.u64() % 3 {
                0 => RejectReason::Overloaded,
                1 => RejectReason::TenantQuota,
                _ => RejectReason::BadFrame,
            },
            detail: g.string(24),
        }),
        _ => Body::ServerError(ServerErrorResponse {
            detail: g.string(24),
        }),
    }
}

fn sample_frame(kind: usize, seed: u64, id: u64) -> Frame {
    Frame {
        id,
        body: sample_body(kind, &mut Gen(seed)),
    }
}

// ---------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// encode → decode → re-encode reproduces the original bytes
    /// exactly, for every payload kind. Byte equality (rather than
    /// frame equality) is what makes this a *bit*-stability pin: NaN
    /// fingerprints compare unequal as f64 but identical as bytes.
    #[test]
    fn round_trip_is_bit_stable(kind in 0usize..8, seed in 0u64..u64::MAX, id in 0u64..u64::MAX) {
        let frame = sample_frame(kind, seed, id);
        let bytes = frame.encode().expect("sampled frames are encodable");
        let (decoded, consumed) = Frame::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(decoded.id, id);
        let again = decoded.encode().expect("decoded frames re-encode");
        prop_assert_eq!(again, bytes);
    }

    /// The stream codec agrees with the buffer codec: what write_frame
    /// puts on a pipe, read_frame takes off it, bit-identically.
    #[test]
    fn stream_round_trip_matches(kind in 0usize..8, seed in 0u64..u64::MAX, id in 0u64..u64::MAX) {
        let frame = sample_frame(kind, seed, id);
        let mut pipe: Vec<u8> = Vec::new();
        write_frame(&mut pipe, &frame).expect("write");
        let got = read_frame(&mut pipe.as_slice()).expect("read");
        prop_assert_eq!(got.encode().unwrap(), frame.encode().unwrap());
    }

    /// Every strict prefix of a valid encoding is a typed error — the
    /// decoder can never be tricked into reading past its input.
    #[test]
    fn every_truncation_is_a_typed_error(kind in 0usize..8, seed in 0u64..u64::MAX) {
        let bytes = sample_frame(kind, seed, 7).encode().unwrap();
        for cut in 0..bytes.len() {
            match Frame::decode(&bytes[..cut]) {
                Err(e) => {
                    prop_assert!(e.is_bad_frame(), "cut {cut}: {e}");
                }
                Ok(_) => {
                    prop_assert!(false, "truncated prefix of len {cut} decoded");
                }
            }
        }
    }

    /// Flipping any byte of a valid encoding either still decodes (a
    /// changed value) or fails with a typed error — never a panic, and
    /// never consuming more bytes than were given.
    #[test]
    fn byte_flips_never_panic(
        kind in 0usize..8,
        seed in 0u64..u64::MAX,
        pos_seed in 0u64..u64::MAX,
        flip in 1u8..=255u8,
    ) {
        let mut bytes = sample_frame(kind, seed, 7).encode().unwrap();
        let pos = (pos_seed as usize) % bytes.len();
        bytes[pos] ^= flip;
        match Frame::decode(&bytes) {
            Ok((frame, consumed)) => {
                prop_assert!(consumed <= bytes.len());
                // Whatever decoded must itself be encodable (closed set).
                prop_assert!(frame.encode().is_ok());
            }
            Err(e) => {
                prop_assert!(e.is_bad_frame(), "flip at {pos}: {e}");
            }
        }
    }

    /// Random garbage never panics; if it happens to decode, the
    /// consumed length stays within bounds.
    #[test]
    fn garbage_never_panics(data in prop::collection::vec(0u64..u64::MAX, 0..9), extra in 0usize..8) {
        let mut bytes: Vec<u8> = data.iter().flat_map(|w| w.to_le_bytes()).collect();
        bytes.truncate(bytes.len().saturating_sub(extra));
        match Frame::decode(&bytes) {
            Ok((_, consumed)) => {
                prop_assert!(consumed <= bytes.len());
            }
            Err(e) => {
                prop_assert!(e.is_bad_frame());
            }
        }
    }

    /// Garbage behind a *valid header* (the adversarial case: framing
    /// looks right, payload is noise) is still typed-or-valid.
    #[test]
    fn garbage_payload_behind_valid_header_never_panics(
        kind_byte in 0u8..=255u8,
        data in prop::collection::vec(0u64..u64::MAX, 0..9),
    ) {
        let payload: Vec<u8> = data.iter().flat_map(|w| w.to_le_bytes()).collect();
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(kind_byte);
        bytes.extend_from_slice(&7u64.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        match Frame::decode(&bytes) {
            Ok((_, consumed)) => {
                prop_assert_eq!(consumed, bytes.len());
            }
            Err(e) => {
                prop_assert!(e.is_bad_frame());
            }
        }
    }
}

// ---------------------------------------------------------------------
// Pinned cases
// ---------------------------------------------------------------------

#[test]
fn non_finite_f64s_cross_the_wire_bit_exactly() {
    let specials = vec![
        f64::NAN,
        -f64::NAN,
        f64::from_bits(0x7FF8_0000_0000_0001), // payload-carrying NaN
        f64::INFINITY,
        f64::NEG_INFINITY,
        -0.0,
        f64::MIN_POSITIVE / 2.0, // subnormal
    ];
    let frame = Frame {
        id: 42,
        body: Body::Localize(LocalizeRequest {
            tenant: "t".into(),
            shard: WireShard {
                building: 1,
                floor: Some(2),
            },
            fingerprint: specials.clone(),
        }),
    };
    let bytes = frame.encode().unwrap();
    let (decoded, _) = Frame::decode(&bytes).unwrap();
    let Body::Localize(req) = decoded.body else {
        panic!("kind changed in transit");
    };
    let got: Vec<u64> = req.fingerprint.iter().map(|v| v.to_bits()).collect();
    let want: Vec<u64> = specials.iter().map(|v| v.to_bits()).collect();
    assert_eq!(got, want);
}

#[test]
fn header_errors_are_specific() {
    let valid = Frame {
        id: 9,
        body: Body::StatsRequest,
    }
    .encode()
    .unwrap();
    assert_eq!(valid.len(), HEADER_LEN);

    let mut bad_magic = valid.clone();
    bad_magic[0] = b'X';
    assert!(matches!(
        Frame::decode(&bad_magic),
        Err(NetError::BadMagic([b'X', b'B']))
    ));

    let mut bad_version = valid.clone();
    bad_version[2] = 9;
    assert!(matches!(
        Frame::decode(&bad_version),
        Err(NetError::Version(9))
    ));

    let mut bad_kind = valid.clone();
    bad_kind[3] = 0x7F;
    assert!(matches!(
        Frame::decode(&bad_kind),
        Err(NetError::Kind(0x7F))
    ));

    let mut oversized = valid.clone();
    oversized[12..16].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
    assert!(matches!(
        Frame::decode(&oversized),
        Err(NetError::Oversized { .. })
    ));

    let mut arr = [0u8; HEADER_LEN];
    arr.copy_from_slice(&valid);
    let header = Header::decode(&arr).unwrap();
    assert_eq!((header.id, header.payload_len), (9, 0));
}

#[test]
fn trailing_bytes_are_rejected() {
    // A Fix frame whose declared length includes one junk byte beyond
    // the payload the kind defines.
    let mut bytes = Frame {
        id: 1,
        body: Body::Fix(FixResponse {
            x: 1.0,
            y: 2.0,
            cold: false,
        }),
    }
    .encode()
    .unwrap();
    let len = (bytes.len() - HEADER_LEN + 1) as u32;
    bytes[12..16].copy_from_slice(&len.to_le_bytes());
    bytes.push(0xAB);
    assert!(matches!(
        Frame::decode(&bytes),
        Err(NetError::TrailingBytes(1))
    ));
}

#[test]
fn bad_tags_and_counts_are_typed() {
    // Fix `cold` byte (offset 16 + 8 + 8) set to 2: bad bool tag.
    let mut bytes = Frame {
        id: 1,
        body: Body::Fix(FixResponse {
            x: 0.0,
            y: 0.0,
            cold: false,
        }),
    }
    .encode()
    .unwrap();
    bytes[HEADER_LEN + 16] = 2;
    assert!(matches!(
        Frame::decode(&bytes),
        Err(NetError::Tag {
            field: "cold",
            value: 2
        })
    ));

    // Rejection reason tag 3: unknown.
    let mut bytes = Frame {
        id: 1,
        body: Body::Rejected(Rejection {
            reason: RejectReason::Overloaded,
            detail: String::new(),
        }),
    }
    .encode()
    .unwrap();
    bytes[HEADER_LEN] = 3;
    assert!(matches!(
        Frame::decode(&bytes),
        Err(NetError::Tag {
            field: "reject_reason",
            value: 3
        })
    ));

    // Fingerprint count claiming 2^29 elements with 8 bytes present:
    // refused before any allocation.
    let mut bytes = Frame {
        id: 1,
        body: Body::Localize(LocalizeRequest {
            tenant: String::new(),
            shard: WireShard {
                building: 0,
                floor: None,
            },
            fingerprint: vec![0.0],
        }),
    }
    .encode()
    .unwrap();
    // Payload layout: tenant len u16 (=0), shard (4 + 1), count u32.
    let count_at = HEADER_LEN + 2 + 5;
    bytes[count_at..count_at + 4].copy_from_slice(&(1u32 << 29).to_le_bytes());
    assert!(matches!(
        Frame::decode(&bytes),
        Err(NetError::Count {
            field: "fingerprint",
            ..
        })
    ));

    // Tenant bytes that are not UTF-8.
    let mut bytes = Frame {
        id: 1,
        body: Body::Localize(LocalizeRequest {
            tenant: "ab".into(),
            shard: WireShard {
                building: 0,
                floor: None,
            },
            fingerprint: vec![],
        }),
    }
    .encode()
    .unwrap();
    bytes[HEADER_LEN + 2] = 0xFF;
    bytes[HEADER_LEN + 3] = 0xFE;
    assert!(matches!(
        Frame::decode(&bytes),
        Err(NetError::Utf8 { field: "tenant" })
    ));
}

#[test]
fn oversized_fields_refuse_to_encode() {
    let frame = Frame {
        id: 1,
        body: Body::ServerError(ServerErrorResponse {
            detail: "x".repeat(usize::from(u16::MAX) + 1),
        }),
    };
    assert!(matches!(frame.encode(), Err(NetError::Oversized { .. })));

    // A fingerprint pushing the payload past MAX_PAYLOAD.
    let frame = Frame {
        id: 1,
        body: Body::Localize(LocalizeRequest {
            tenant: String::new(),
            shard: WireShard {
                building: 0,
                floor: None,
            },
            fingerprint: vec![0.0; (MAX_PAYLOAD as usize / 8) + 1],
        }),
    };
    assert!(matches!(frame.encode(), Err(NetError::Oversized { .. })));
}

#[test]
fn truncated_stream_reads_are_io_errors() {
    let bytes = Frame {
        id: 3,
        body: Body::Fix(FixResponse {
            x: 1.0,
            y: 2.0,
            cold: true,
        }),
    }
    .encode()
    .unwrap();
    for cut in 0..bytes.len() {
        match read_frame(&mut &bytes[..cut]) {
            Err(NetError::Io(_)) => {}
            other => panic!("cut {cut}: expected io error, got {other:?}"),
        }
    }
}
