use noble_geo::GeoError;
use std::error::Error;
use std::fmt;

/// Errors produced by dataset generation.
#[derive(Debug, Clone, PartialEq)]
pub enum DatasetError {
    /// A configuration value was invalid.
    InvalidConfig(String),
    /// Rejection sampling failed to place a point on accessible space
    /// (would indicate a degenerate floor plan).
    SamplingFailed {
        /// Attempts made before giving up.
        attempts: usize,
    },
    /// An underlying geometry failure.
    Geo(GeoError),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DatasetError::SamplingFailed { attempts } => {
                write!(
                    f,
                    "failed to sample an accessible point after {attempts} attempts"
                )
            }
            DatasetError::Geo(e) => write!(f, "geometry failure: {e}"),
        }
    }
}

impl Error for DatasetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DatasetError::Geo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeoError> for DatasetError {
    fn from(e: GeoError) -> Self {
        DatasetError::Geo(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert!(DatasetError::InvalidConfig("x".into())
            .to_string()
            .contains("x"));
        assert!(DatasetError::SamplingFailed { attempts: 9 }
            .to_string()
            .contains('9'));
        let e: DatasetError = GeoError::EmptyMap.into();
        assert!(Error::source(&e).is_some());
    }
}
