//! WiFi fingerprint campaign generation: the synthetic stand-ins for
//! UJIIndoorLoc and the IPIN 2016 Tutorial dataset.
//!
//! A *campaign* bundles the campus map, the deployed WAPs, and offline
//! (train), validation and online (test) fingerprint collections, exactly
//! the artifacts the paper's §IV pipeline consumes.

use crate::campus::{ipin_building, sample_accessible_point, uji_campus, CampusConfig};
use crate::rssi::{normalize_fingerprint, PathLossModel, Wap};
use crate::{split_indices, DatasetError};
use noble_geo::{CampusMap, Point};
use noble_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One labeled fingerprint sample.
#[derive(Debug, Clone, PartialEq)]
pub struct WifiSample {
    /// Raw RSSI per WAP in dBm ([`crate::NOT_DETECTED`] when unheard).
    pub rssi: Vec<f64>,
    /// Ground-truth building index.
    pub building: usize,
    /// Ground-truth floor index.
    pub floor: usize,
    /// Ground-truth planar position (meters).
    pub position: Point,
}

/// Configuration of a synthetic WiFi campaign.
///
/// Mirrors how UJIIndoorLoc was collected: the offline phase visits a set
/// of discrete *reference locations* per floor and records several
/// fingerprints at each (shadowing varies per scan); the online phase
/// revisits some references and also probes fresh positions.
#[derive(Debug, Clone, PartialEq)]
pub struct UjiConfig {
    /// Campus geometry.
    pub campus: CampusConfig,
    /// Radio channel.
    pub channel: PathLossModel,
    /// WAPs deployed per building per floor.
    pub waps_per_building_floor: usize,
    /// Offline reference locations per building per floor.
    pub references_per_floor: usize,
    /// Fingerprints recorded at each offline reference.
    pub samples_per_reference: usize,
    /// Online (test) samples per building per floor.
    pub test_samples_per_floor: usize,
    /// Fraction of online samples taken at known reference locations
    /// (the rest probe fresh accessible positions).
    pub test_fraction_at_references: f64,
    /// Fraction of offline samples held out for validation.
    pub val_fraction: f64,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
}

impl Default for UjiConfig {
    fn default() -> Self {
        UjiConfig {
            campus: CampusConfig::default(),
            channel: PathLossModel::default(),
            waps_per_building_floor: 16, // 3 buildings x 4 floors x 16 = 192 WAPs
            references_per_floor: 110,
            samples_per_reference: 6,
            test_samples_per_floor: 90,
            test_fraction_at_references: 0.7,
            val_fraction: 0.15,
            seed: 0xCAFE,
        }
    }
}

impl UjiConfig {
    /// A reduced configuration for unit tests and doc examples (runs in
    /// milliseconds).
    pub fn small() -> Self {
        UjiConfig {
            campus: CampusConfig {
                floors: 2,
                ..CampusConfig::default()
            },
            waps_per_building_floor: 4,
            references_per_floor: 10,
            samples_per_reference: 4,
            test_samples_per_floor: 12,
            ..UjiConfig::default()
        }
    }
}

/// A generated fingerprint campaign: map, WAPs and splits.
#[derive(Debug, Clone)]
pub struct WifiCampaign {
    /// The campus floor plan.
    pub map: CampusMap,
    /// Deployed access points.
    pub waps: Vec<Wap>,
    /// Radio channel used (needed to normalize features consistently).
    pub channel: PathLossModel,
    /// Offline training fingerprints.
    pub train: Vec<WifiSample>,
    /// Validation fingerprints (held out from the offline campaign).
    pub val: Vec<WifiSample>,
    /// Online test fingerprints.
    pub test: Vec<WifiSample>,
}

impl WifiCampaign {
    /// Number of WAPs (the feature dimension).
    pub fn num_waps(&self) -> usize {
        self.waps.len()
    }

    /// Normalized `(n, num_waps)` feature matrix of a sample slice.
    pub fn features(&self, samples: &[WifiSample]) -> Matrix {
        let mut m = Matrix::zeros(samples.len(), self.num_waps());
        for (i, s) in samples.iter().enumerate() {
            let row = normalize_fingerprint(&s.rssi, self.channel.detection_threshold_dbm);
            m.row_mut(i).copy_from_slice(&row);
        }
        m
    }

    /// Ground-truth positions of a sample slice.
    pub fn positions(samples: &[WifiSample]) -> Vec<Point> {
        samples.iter().map(|s| s.position).collect()
    }
}

/// Generates the three-building UJI-like campaign.
///
/// # Errors
///
/// Propagates configuration and sampling failures.
pub fn uji_campaign(cfg: &UjiConfig) -> Result<WifiCampaign, DatasetError> {
    let map = uji_campus(&cfg.campus)?;
    campaign_on_map(cfg, map)
}

/// Generates the single-building IPIN-like campaign.
///
/// The default [`UjiConfig`] is reinterpreted over the smaller site; pass a
/// config with smaller `campus` dimensions for a faithful IPIN scale.
///
/// # Errors
///
/// Propagates configuration and sampling failures.
pub fn ipin_campaign(cfg: &UjiConfig) -> Result<WifiCampaign, DatasetError> {
    let map = ipin_building(&cfg.campus)?;
    campaign_on_map(cfg, map)
}

fn campaign_on_map(cfg: &UjiConfig, map: CampusMap) -> Result<WifiCampaign, DatasetError> {
    if cfg.waps_per_building_floor == 0 {
        return Err(DatasetError::InvalidConfig(
            "need at least one WAP per floor".into(),
        ));
    }
    if cfg.references_per_floor == 0
        || cfg.samples_per_reference == 0
        || cfg.test_samples_per_floor == 0
    {
        return Err(DatasetError::InvalidConfig("need samples per floor".into()));
    }
    if !(0.0..1.0).contains(&cfg.val_fraction) {
        return Err(DatasetError::InvalidConfig(format!(
            "val fraction {} outside [0, 1)",
            cfg.val_fraction
        )));
    }
    if !(0.0..=1.0).contains(&cfg.test_fraction_at_references) {
        return Err(DatasetError::InvalidConfig(format!(
            "test reference fraction {} outside [0, 1]",
            cfg.test_fraction_at_references
        )));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Deploy WAPs along each building ring on every floor.
    let mut waps = Vec::new();
    for (b_idx, _b) in map.buildings().iter().enumerate() {
        for floor in 0..map.buildings()[b_idx].floors() {
            for _ in 0..cfg.waps_per_building_floor {
                let position = sample_accessible_point(&map, b_idx, &mut rng)?;
                waps.push(Wap {
                    position,
                    building: b_idx,
                    floor,
                    tx_power_dbm: rng.gen_range(-38.0..-28.0),
                });
            }
        }
    }

    // Offline phase: discrete reference locations, several scans each.
    let mut offline = Vec::new();
    let mut references: Vec<Vec<Point>> = Vec::new(); // per (building, floor)
    for b_idx in 0..map.building_count() {
        for floor in 0..map.buildings()[b_idx].floors() {
            let refs: Vec<Point> = (0..cfg.references_per_floor)
                .map(|_| sample_accessible_point(&map, b_idx, &mut rng))
                .collect::<Result<_, _>>()?;
            for &position in &refs {
                for _ in 0..cfg.samples_per_reference {
                    let rssi = cfg
                        .channel
                        .fingerprint(&waps, position, b_idx, floor, &mut rng);
                    offline.push(WifiSample {
                        rssi,
                        building: b_idx,
                        floor,
                        position,
                    });
                }
            }
            references.push(refs);
        }
    }
    // Online phase: a mix of revisited references and fresh positions,
    // always with independent shadowing.
    let mut test = Vec::new();
    let mut flat_idx = 0;
    for b_idx in 0..map.building_count() {
        for floor in 0..map.buildings()[b_idx].floors() {
            let refs = &references[flat_idx];
            flat_idx += 1;
            for _ in 0..cfg.test_samples_per_floor {
                let position = if rng.gen_range(0.0..1.0) < cfg.test_fraction_at_references {
                    refs[rng.gen_range(0..refs.len())]
                } else {
                    sample_accessible_point(&map, b_idx, &mut rng)?
                };
                let rssi = cfg
                    .channel
                    .fingerprint(&waps, position, b_idx, floor, &mut rng);
                test.push(WifiSample {
                    rssi,
                    building: b_idx,
                    floor,
                    position,
                });
            }
        }
    }

    let (train_idx, val_idx, _) = split_indices(
        offline.len(),
        1.0 - cfg.val_fraction,
        cfg.val_fraction,
        cfg.seed ^ 0x51,
    );
    let train: Vec<WifiSample> = train_idx.iter().map(|&i| offline[i].clone()).collect();
    let val: Vec<WifiSample> = val_idx.iter().map(|&i| offline[i].clone()).collect();

    Ok(WifiCampaign {
        map,
        waps,
        channel: cfg.channel.clone(),
        train,
        val,
        test,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rssi::NOT_DETECTED;

    fn small() -> WifiCampaign {
        uji_campaign(&UjiConfig::small()).unwrap()
    }

    #[test]
    fn campaign_counts() {
        let c = small();
        // 3 buildings x 2 floors.
        assert_eq!(c.num_waps(), 3 * 2 * 4);
        assert_eq!(c.train.len() + c.val.len(), 3 * 2 * 40);
        assert_eq!(c.test.len(), 3 * 2 * 12);
        assert!((c.val.len() as f64 / (3.0 * 2.0 * 40.0) - 0.15).abs() < 0.02);
    }

    #[test]
    fn samples_lie_on_accessible_space() {
        let c = small();
        for s in c.train.iter().chain(&c.val).chain(&c.test) {
            assert_eq!(c.map.building_containing(s.position), Some(s.building));
            assert!(s.floor < c.map.buildings()[s.building].floors());
        }
    }

    #[test]
    fn fingerprints_have_nearby_signal() {
        let c = small();
        // Every sample should hear at least one WAP (same building).
        for s in c.train.iter().take(50) {
            let heard = s.rssi.iter().filter(|&&v| v != NOT_DETECTED).count();
            assert!(heard > 0, "sample at {:?} hears nothing", s.position);
        }
    }

    #[test]
    fn features_are_normalized() {
        let c = small();
        let f = c.features(&c.train[..10.min(c.train.len())]);
        assert_eq!(f.cols(), c.num_waps());
        assert!(f.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = uji_campaign(&UjiConfig::small()).unwrap();
        let b = uji_campaign(&UjiConfig::small()).unwrap();
        assert_eq!(a.train[0], b.train[0]);
        let mut cfg = UjiConfig::small();
        cfg.seed ^= 1;
        let c = uji_campaign(&cfg).unwrap();
        assert_ne!(a.train[0].rssi, c.train[0].rssi);
    }

    #[test]
    fn ipin_campaign_single_building() {
        let mut cfg = UjiConfig::small();
        cfg.campus.building_width_m = 50.0;
        cfg.campus.building_depth_m = 40.0;
        cfg.campus.ring_thickness_m = 10.0;
        let c = ipin_campaign(&cfg).unwrap();
        assert_eq!(c.map.building_count(), 1);
        assert!(c.train.iter().all(|s| s.building == 0));
    }

    #[test]
    fn config_validation() {
        let mut cfg = UjiConfig::small();
        cfg.waps_per_building_floor = 0;
        assert!(uji_campaign(&cfg).is_err());
        let mut cfg = UjiConfig::small();
        cfg.references_per_floor = 0;
        assert!(uji_campaign(&cfg).is_err());
        let mut cfg = UjiConfig::small();
        cfg.samples_per_reference = 0;
        assert!(uji_campaign(&cfg).is_err());
        let mut cfg = UjiConfig::small();
        cfg.val_fraction = 1.2;
        assert!(uji_campaign(&cfg).is_err());
        let mut cfg = UjiConfig::small();
        cfg.test_fraction_at_references = 1.5;
        assert!(uji_campaign(&cfg).is_err());
    }

    #[test]
    fn positions_helper() {
        let c = small();
        let pos = WifiCampaign::positions(&c.test);
        assert_eq!(pos.len(), c.test.len());
        assert_eq!(pos[0], c.test[0].position);
    }

    #[test]
    fn signal_correlates_with_distance() {
        // The nearest WAP on the same floor should usually be heard louder
        // than one in another building.
        let c = small();
        let mut wins = 0;
        let mut total = 0;
        for s in c.train.iter().take(100) {
            let mut best_same = f64::NEG_INFINITY;
            let mut best_other = f64::NEG_INFINITY;
            for (w, &r) in c.waps.iter().zip(&s.rssi) {
                if r == NOT_DETECTED {
                    continue;
                }
                if w.building == s.building {
                    best_same = best_same.max(r);
                } else {
                    best_other = best_other.max(r);
                }
            }
            if best_same > f64::NEG_INFINITY {
                total += 1;
                if best_same > best_other {
                    wins += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            wins as f64 / total as f64 > 0.9,
            "same-building WAP should dominate: {wins}/{total}"
        );
    }
}
