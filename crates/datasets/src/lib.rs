//! Synthetic dataset generators for the NObLe reproduction.
//!
//! The paper evaluates on three datasets we cannot ship: UJIIndoorLoc
//! (external download), the IPIN 2016 Tutorial dataset (external download),
//! and the authors' never-released campus IMU walks. Per the reproduction
//! plan (DESIGN.md §2) this crate builds synthetic equivalents that
//! exercise the same code paths:
//!
//! - [`uji_campaign`] — a three-building, four-floor campus in the spirit
//!   of Fig. 1: ring-shaped buildings whose courtyards are inaccessible,
//!   RSSI fingerprints from a log-distance path-loss model with wall/floor
//!   attenuation and shadowing ([`rssi`] module),
//! - [`ipin_campaign`] — a single smaller building,
//! - [`ImuDataset`] — simulated pedestrian walks around a campus loop with
//!   raw 50 Hz accelerometer/gyroscope synthesis, reference locations every
//!   `SAMPLES_PER_SEGMENT` readings, and the paper's path construction
//!   (random start reference, bounded segment count).
//!
//! All generators are deterministic given a seed.
//!
//! # Example
//!
//! ```
//! use noble_datasets::{UjiConfig, uji_campaign};
//!
//! let mut cfg = UjiConfig::small();
//! cfg.seed = 7;
//! let campaign = uji_campaign(&cfg).unwrap();
//! assert_eq!(campaign.map.building_count(), 3);
//! assert!(!campaign.train.is_empty());
//! assert!(!campaign.test.is_empty());
//! ```

mod campus;
mod error;
mod imu;
pub mod io;
pub mod rssi;
mod split;
mod wifi;

pub use campus::{ipin_building, uji_campus, CampusConfig};
pub use error::DatasetError;
pub use imu::{
    ImuConfig, ImuDataset, ImuPathSample, ImuSegment, SAMPLES_PER_SEGMENT, SEGMENT_FEATURE_DIM,
};
pub use rssi::{PathLossModel, Wap, NOT_DETECTED};
pub use split::split_indices;
pub use wifi::{ipin_campaign, uji_campaign, UjiConfig, WifiCampaign, WifiSample};
