//! CSV import/export of fingerprint collections.
//!
//! The synthetic campaigns mirror UJIIndoorLoc's published layout: one row
//! per fingerprint, one RSSI column per WAP (with
//! [`NOT_DETECTED`](crate::NOT_DETECTED) = `100` for unheard WAPs),
//! followed by longitude, latitude, floor and building columns. Exporting
//! lets downstream tools plot our campaigns; importing lets users run this
//! crate's pipeline on the *real* UJIIndoorLoc CSV after trimming its
//! metadata columns.

use crate::{DatasetError, WifiSample};
use noble_geo::Point;

/// Writes samples as CSV: `wap000..wapNNN,x,y,floor,building`.
pub fn wifi_samples_to_csv(samples: &[WifiSample]) -> String {
    let num_waps = samples.first().map(|s| s.rssi.len()).unwrap_or(0);
    let mut out = String::new();
    for w in 0..num_waps {
        out.push_str(&format!("wap{w:03},"));
    }
    out.push_str("x,y,floor,building\n");
    for s in samples {
        for r in &s.rssi {
            out.push_str(&format!("{r:.1},"));
        }
        out.push_str(&format!(
            "{:.4},{:.4},{},{}\n",
            s.position.x, s.position.y, s.floor, s.building
        ));
    }
    out
}

/// Parses the CSV produced by [`wifi_samples_to_csv`] (or a real dataset
/// trimmed to the same layout).
///
/// # Errors
///
/// Returns [`DatasetError::InvalidConfig`] for malformed headers, ragged
/// rows or unparseable numbers; the message names the offending line.
pub fn wifi_samples_from_csv(csv: &str) -> Result<Vec<WifiSample>, DatasetError> {
    let mut lines = csv.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| DatasetError::InvalidConfig("empty csv".into()))?;
    let columns: Vec<&str> = header.split(',').collect();
    if columns.len() < 5 {
        return Err(DatasetError::InvalidConfig(
            "header needs at least one wap column plus x,y,floor,building".into(),
        ));
    }
    let tail: Vec<&str> = columns[columns.len() - 4..].to_vec();
    if tail != ["x", "y", "floor", "building"] {
        return Err(DatasetError::InvalidConfig(format!(
            "header must end with x,y,floor,building; got {tail:?}"
        )));
    }
    let num_waps = columns.len() - 4;
    let mut samples = Vec::new();
    for (lineno, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != columns.len() {
            return Err(DatasetError::InvalidConfig(format!(
                "line {}: {} fields, expected {}",
                lineno + 1,
                fields.len(),
                columns.len()
            )));
        }
        let parse = |s: &str, what: &str| -> Result<f64, DatasetError> {
            s.trim().parse::<f64>().map_err(|_| {
                DatasetError::InvalidConfig(format!("line {}: bad {what} '{s}'", lineno + 1))
            })
        };
        let rssi: Vec<f64> = fields[..num_waps]
            .iter()
            .map(|f| parse(f, "rssi"))
            .collect::<Result<_, _>>()?;
        let x = parse(fields[num_waps], "x")?;
        let y = parse(fields[num_waps + 1], "y")?;
        let floor = parse(fields[num_waps + 2], "floor")? as usize;
        let building = parse(fields[num_waps + 3], "building")? as usize;
        samples.push(WifiSample {
            rssi,
            building,
            floor,
            position: Point::new(x, y),
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{uji_campaign, UjiConfig, NOT_DETECTED};

    #[test]
    fn round_trip_preserves_samples() {
        let campaign = uji_campaign(&UjiConfig::small()).unwrap();
        let original = &campaign.train[..20];
        let csv = wifi_samples_to_csv(original);
        let parsed = wifi_samples_from_csv(&csv).unwrap();
        assert_eq!(parsed.len(), original.len());
        for (a, b) in parsed.iter().zip(original) {
            assert_eq!(a.building, b.building);
            assert_eq!(a.floor, b.floor);
            assert!((a.position.x - b.position.x).abs() < 1e-3);
            // RSSI written with one decimal.
            for (ra, rb) in a.rssi.iter().zip(&b.rssi) {
                assert!((ra - rb).abs() < 0.06, "{ra} vs {rb}");
            }
        }
    }

    #[test]
    fn not_detected_survives_round_trip() {
        let s = WifiSample {
            rssi: vec![NOT_DETECTED, -60.0],
            building: 1,
            floor: 2,
            position: Point::new(3.0, 4.0),
        };
        let csv = wifi_samples_to_csv(&[s]);
        let parsed = wifi_samples_from_csv(&csv).unwrap();
        assert_eq!(parsed[0].rssi[0], NOT_DETECTED);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(wifi_samples_from_csv("").is_err());
        assert!(wifi_samples_from_csv("a,b\n").is_err());
        assert!(wifi_samples_from_csv("wap000,x,y,floor,nope\n").is_err());
        // Ragged row.
        let bad = "wap000,x,y,floor,building\n-50.0,1.0,2.0,0\n";
        assert!(wifi_samples_from_csv(bad).is_err());
        // Unparseable number.
        let bad = "wap000,x,y,floor,building\nfoo,1.0,2.0,0,0\n";
        assert!(wifi_samples_from_csv(bad).is_err());
    }

    #[test]
    fn empty_body_is_ok() {
        let parsed = wifi_samples_from_csv("wap000,x,y,floor,building\n").unwrap();
        assert!(parsed.is_empty());
    }

    #[test]
    fn skips_blank_lines() {
        let csv = "wap000,x,y,floor,building\n-50.0,1.0,2.0,0,1\n\n-40.0,2.0,3.0,1,0\n";
        let parsed = wifi_samples_from_csv(csv).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].building, 0);
    }
}
