//! Deterministic train/validation/test splits.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Randomly partitions `0..n` into train/validation/test index sets with
/// the given fractions (test receives the remainder).
///
/// # Panics
///
/// Panics when `train_frac + val_frac > 1.0` or a fraction is negative.
pub fn split_indices(
    n: usize,
    train_frac: f64,
    val_frac: f64,
    seed: u64,
) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    assert!(
        train_frac >= 0.0 && val_frac >= 0.0 && train_frac + val_frac <= 1.0,
        "invalid split fractions {train_frac}/{val_frac}"
    );
    let mut indices: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let n_train = (n as f64 * train_frac).round() as usize;
    let n_val = (n as f64 * val_frac).round() as usize;
    let n_train = n_train.min(n);
    let n_val = n_val.min(n - n_train);
    let test = indices.split_off(n_train + n_val);
    let val = indices.split_off(n_train);
    let train = indices;
    (train, val, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn partition_is_exact() {
        let (tr, va, te) = split_indices(100, 0.64, 0.16, 42);
        assert_eq!(tr.len(), 64);
        assert_eq!(va.len(), 16);
        assert_eq!(te.len(), 20);
        let all: HashSet<usize> = tr.iter().chain(&va).chain(&te).copied().collect();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            split_indices(50, 0.8, 0.1, 7),
            split_indices(50, 0.8, 0.1, 7)
        );
        assert_ne!(
            split_indices(50, 0.8, 0.1, 7).0,
            split_indices(50, 0.8, 0.1, 8).0
        );
    }

    #[test]
    fn degenerate_fractions() {
        let (tr, va, te) = split_indices(10, 1.0, 0.0, 0);
        assert_eq!(tr.len(), 10);
        assert!(va.is_empty());
        assert!(te.is_empty());
        let (tr, va, te) = split_indices(10, 0.0, 0.0, 0);
        assert!(tr.is_empty());
        assert!(va.is_empty());
        assert_eq!(te.len(), 10);
        let (tr, _, _) = split_indices(0, 0.5, 0.2, 0);
        assert!(tr.is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid split fractions")]
    fn rejects_oversubscribed_fractions() {
        split_indices(10, 0.8, 0.5, 0);
    }

    #[test]
    fn rounding_never_overflows() {
        for n in [1usize, 3, 7, 13] {
            let (tr, va, te) = split_indices(n, 0.64, 0.16, 1);
            assert_eq!(tr.len() + va.len() + te.len(), n);
        }
    }
}
