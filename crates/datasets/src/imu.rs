//! IMU device-tracking dataset: a synthetic stand-in for the paper's
//! never-released campus walking data (§V-A).
//!
//! The paper records two walks around a 160 m x 60 m outdoor loop at
//! ~50 Hz with 177 reference GPS locations and 768 readings per sensor
//! axis between consecutive references; paths are built by picking a random
//! start reference and a bounded number of consecutive segments.
//!
//! This module reproduces that protocol end to end:
//!
//! 1. a pedestrian walks laps of a rectangular loop with a time-varying
//!    speed and gait;
//! 2. raw 3-axis accelerometer and 3-axis gyroscope streams are synthesized
//!    at 50 Hz (gravity, body-frame rotation, gait oscillation, white
//!    noise, slowly drifting bias) — [`SAMPLES_PER_SEGMENT`] readings per
//!    reference segment exactly as in the paper;
//! 3. each segment is *featurized* the way a strapdown pedestrian
//!    dead-reckoning frontend would: integrated gyro turn, gait statistics,
//!    step counts, and a noisy dead-reckoned displacement estimate seeded
//!    by a compass reading ([`ImuSegment::features`]);
//! 4. paths are sampled with the paper's random-start / bounded-length
//!    construction and split into train/val/test.
//!
//! The error-accumulation character of real IMU tracking is preserved:
//! dead-reckoned displacement drifts with path length, which is what the
//! deep-regression baseline inherits and what NObLe's classification
//! formulation corrects.

use crate::rssi::standard_normal;
use crate::{split_indices, DatasetError};
use noble_geo::{Building, CampusMap, Point, Polygon, Polyline};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Raw readings per sensor axis between consecutive reference locations
/// (the paper's value).
pub const SAMPLES_PER_SEGMENT: usize = 768;

/// Number of features extracted per segment.
pub const SEGMENT_FEATURE_DIM: usize = 10;

/// Configuration of the IMU walking simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ImuConfig {
    /// Loop width in meters (paper: 160).
    pub loop_width_m: f64,
    /// Loop height in meters (paper: 60).
    pub loop_height_m: f64,
    /// Width of the walkway band for the structure metrics.
    pub walkway_width_m: f64,
    /// Sampling rate in Hz (paper: ~50).
    pub sample_rate_hz: f64,
    /// Number of reference locations to record (paper: 177).
    pub num_reference_points: usize,
    /// Number of paths to construct (paper: 6857).
    pub num_paths: usize,
    /// Maximum number of segments per path (paper bounds length by 50).
    pub max_path_segments: usize,
    /// Mean walking speed (m/s).
    pub base_speed_mps: f64,
    /// Accelerometer white-noise standard deviation (m/s^2).
    pub accel_noise: f64,
    /// Gyroscope white-noise standard deviation (rad/s).
    pub gyro_noise: f64,
    /// Gyroscope bias random-walk step (rad/s per sample).
    pub gyro_bias_walk: f64,
    /// Compass (initial heading) noise standard deviation (rad).
    pub compass_noise: f64,
    /// Stride-length estimation error of the dead-reckoning frontend
    /// (relative, e.g. 0.08 = 8%).
    pub stride_error: f64,
    /// Train fraction of paths.
    pub train_fraction: f64,
    /// Validation fraction of paths.
    pub val_fraction: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for ImuConfig {
    fn default() -> Self {
        ImuConfig {
            loop_width_m: 160.0,
            loop_height_m: 60.0,
            walkway_width_m: 3.0,
            sample_rate_hz: 50.0,
            num_reference_points: 177,
            num_paths: 6857,
            max_path_segments: 12,
            base_speed_mps: 1.35,
            accel_noise: 0.35,
            gyro_noise: 0.02,
            gyro_bias_walk: 2e-5,
            compass_noise: 0.12,
            stride_error: 0.06,
            train_fraction: 0.64,
            val_fraction: 0.16,
            seed: 0x1D10,
        }
    }
}

impl ImuConfig {
    /// A reduced configuration for unit tests (runs in milliseconds).
    pub fn small() -> Self {
        ImuConfig {
            num_reference_points: 24,
            num_paths: 120,
            max_path_segments: 5,
            ..ImuConfig::default()
        }
    }
}

/// Featurized readings of one reference-to-reference segment.
#[derive(Debug, Clone, PartialEq)]
pub struct ImuSegment {
    features: [f64; SEGMENT_FEATURE_DIM],
}

impl ImuSegment {
    /// The feature vector:
    /// `[total_turn, gyro_mean, gyro_std, accel_xy_mean, accel_z_std,
    ///   step_count, dr_dx, dr_dy, sin(compass), cos(compass)]`.
    pub fn features(&self) -> &[f64; SEGMENT_FEATURE_DIM] {
        &self.features
    }

    /// Dead-reckoned displacement estimate of this segment.
    pub fn dead_reckoned_displacement(&self) -> Point {
        Point::new(self.features[6], self.features[7])
    }
}

/// One training/evaluation path: consecutive segments plus endpoint labels.
#[derive(Debug, Clone, PartialEq)]
pub struct ImuPathSample {
    /// Featurized segments, in walking order.
    pub segments: Vec<ImuSegment>,
    /// Index of the start reference location.
    pub start_ref: usize,
    /// Ground-truth start position.
    pub start_position: Point,
    /// Ground-truth end position (the label).
    pub end_position: Point,
}

impl ImuPathSample {
    /// Dead-reckoned end-position estimate: start + sum of segment
    /// displacement estimates. This is the classical strapdown baseline
    /// whose error accumulates with path length.
    pub fn dead_reckoned_end(&self) -> Point {
        let mut p = self.start_position;
        for s in &self.segments {
            p = p + s.dead_reckoned_displacement();
        }
        p
    }

    /// True displacement of the path.
    pub fn true_displacement(&self) -> Point {
        self.end_position - self.start_position
    }
}

/// The generated IMU tracking dataset.
#[derive(Debug, Clone)]
pub struct ImuDataset {
    /// Ground-truth reference locations, in walking order.
    pub reference_points: Vec<Point>,
    /// Walkway map (one ring building) for structure metrics.
    pub walkway: CampusMap,
    /// Training paths.
    pub train: Vec<ImuPathSample>,
    /// Validation paths.
    pub val: Vec<ImuPathSample>,
    /// Test paths.
    pub test: Vec<ImuPathSample>,
    /// Maximum segments per path (for input padding).
    pub max_segments: usize,
}

impl ImuDataset {
    /// Generates the dataset.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidConfig`] on degenerate parameters.
    pub fn generate(cfg: &ImuConfig) -> Result<Self, DatasetError> {
        validate(cfg)?;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let loop_path = loop_polyline(cfg)?;
        let walkway = walkway_map(cfg)?;

        // --- Phase 1: walk the loop, synthesizing raw IMU per segment. ---
        let dt = 1.0 / cfg.sample_rate_hz;
        let mut arc = 0.0f64; // arc-length along the loop (unwrapped)
        let mut t = 0.0f64;
        let mut gyro_bias = 0.0f64;
        let mut accel_bias = 0.0f64;
        let total_len = loop_path.length();

        let mut reference_points = Vec::with_capacity(cfg.num_reference_points + 1);
        let mut segments = Vec::with_capacity(cfg.num_reference_points);
        reference_points.push(loop_path.point_at(0.0));

        let mut prev_heading = loop_path.heading_at(0.0);
        let mut unwrapped_heading = prev_heading;
        // Gait phase must be integrated (phase += 2π f dt); evaluating
        // 2π f(t) t with a time-varying f would corrupt the instantaneous
        // step frequency at large t.
        let mut gait_phase = 0.0f64;

        for _seg in 0..cfg.num_reference_points {
            // Raw per-sample streams for this segment.
            let mut gyro_z = Vec::with_capacity(SAMPLES_PER_SEGMENT);
            let mut accel_fwd = Vec::with_capacity(SAMPLES_PER_SEGMENT);
            let mut accel_lat = Vec::with_capacity(SAMPLES_PER_SEGMENT);
            let mut accel_vert = Vec::with_capacity(SAMPLES_PER_SEGMENT);
            let mut speeds = Vec::with_capacity(SAMPLES_PER_SEGMENT);

            // Compass fix at segment start (absolute heading with noise).
            let compass = unwrapped_heading + cfg.compass_noise * standard_normal(&mut rng);

            let mut prev_speed = walking_speed(cfg, t);
            for _ in 0..SAMPLES_PER_SEGMENT {
                let speed = walking_speed(cfg, t);
                arc += speed * dt;
                t += dt;
                let s_mod = arc % total_len;
                let heading = loop_path.heading_at(s_mod);
                // Unwrap heading so the rate is finite at the seam.
                let mut delta = heading - prev_heading;
                while delta > std::f64::consts::PI {
                    delta -= 2.0 * std::f64::consts::PI;
                }
                while delta < -std::f64::consts::PI {
                    delta += 2.0 * std::f64::consts::PI;
                }
                prev_heading = heading;
                unwrapped_heading += delta;
                let turn_rate = delta / dt;

                // Gait: vertical bounce and forward surge at step frequency.
                let step_freq = 1.9 * speed / cfg.base_speed_mps;
                gait_phase += 2.0 * std::f64::consts::PI * step_freq * dt;
                let gait_vert = 2.8 * gait_phase.sin();
                let gait_fwd = 0.9 * (2.0 * gait_phase).sin();

                // Bias random walks.
                gyro_bias += cfg.gyro_bias_walk * standard_normal(&mut rng);
                accel_bias += cfg.gyro_bias_walk * 5.0 * standard_normal(&mut rng);

                let lin_acc_fwd = (speed - prev_speed) / dt;
                prev_speed = speed;
                let centripetal = speed * turn_rate;

                gyro_z.push(turn_rate + gyro_bias + cfg.gyro_noise * standard_normal(&mut rng));
                accel_fwd.push(
                    lin_acc_fwd
                        + gait_fwd
                        + accel_bias
                        + cfg.accel_noise * standard_normal(&mut rng),
                );
                accel_lat.push(centripetal + cfg.accel_noise * standard_normal(&mut rng));
                accel_vert.push(9.81 + gait_vert + cfg.accel_noise * standard_normal(&mut rng));
                speeds.push(speed);
            }

            segments.push(featurize(
                cfg,
                &gyro_z,
                &accel_fwd,
                &accel_lat,
                &accel_vert,
                compass,
                dt,
                &mut rng,
            ));
            reference_points.push(loop_path.point_at(arc % total_len));
        }

        // --- Phase 2: the paper's path construction. ---
        let mut paths = Vec::with_capacity(cfg.num_paths);
        for _ in 0..cfg.num_paths {
            let len = rng.gen_range(1..=cfg.max_path_segments);
            let start = rng.gen_range(0..=(cfg.num_reference_points - len));
            let segs: Vec<ImuSegment> = segments[start..start + len].to_vec();
            paths.push(ImuPathSample {
                segments: segs,
                start_ref: start,
                start_position: reference_points[start],
                end_position: reference_points[start + len],
            });
        }

        let (train_idx, val_idx, test_idx) = split_indices(
            paths.len(),
            cfg.train_fraction,
            cfg.val_fraction,
            cfg.seed ^ 0x77,
        );
        let pick = |idx: &[usize]| idx.iter().map(|&i| paths[i].clone()).collect::<Vec<_>>();
        Ok(ImuDataset {
            reference_points,
            walkway,
            train: pick(&train_idx),
            val: pick(&val_idx),
            test: pick(&test_idx),
            max_segments: cfg.max_path_segments,
        })
    }

    /// All end positions of the training paths (quantizer fitting input).
    pub fn train_end_positions(&self) -> Vec<Point> {
        self.train.iter().map(|p| p.end_position).collect()
    }
}

fn validate(cfg: &ImuConfig) -> Result<(), DatasetError> {
    if cfg.num_reference_points < 2 {
        return Err(DatasetError::InvalidConfig(
            "need at least 2 reference points".into(),
        ));
    }
    if cfg.max_path_segments == 0 || cfg.max_path_segments >= cfg.num_reference_points {
        return Err(DatasetError::InvalidConfig(format!(
            "max_path_segments {} must be in [1, num_reference_points)",
            cfg.max_path_segments
        )));
    }
    if cfg.num_paths == 0 {
        return Err(DatasetError::InvalidConfig("need at least one path".into()));
    }
    if cfg.sample_rate_hz <= 0.0 || cfg.base_speed_mps <= 0.0 {
        return Err(DatasetError::InvalidConfig("rates must be positive".into()));
    }
    if cfg.loop_width_m <= 2.0 * cfg.walkway_width_m
        || cfg.loop_height_m <= 2.0 * cfg.walkway_width_m
    {
        return Err(DatasetError::InvalidConfig(
            "loop too small for walkway".into(),
        ));
    }
    if cfg.train_fraction + cfg.val_fraction >= 1.0 {
        return Err(DatasetError::InvalidConfig(
            "train+val fractions must leave test data".into(),
        ));
    }
    Ok(())
}

/// The walking loop: the centerline of the walkway band, traversed
/// counter-clockwise.
fn loop_polyline(cfg: &ImuConfig) -> Result<Polyline, DatasetError> {
    let w = cfg.loop_width_m;
    let h = cfg.loop_height_m;
    Ok(Polyline::new(vec![
        Point::new(0.0, 0.0),
        Point::new(w, 0.0),
        Point::new(w, h),
        Point::new(0.0, h),
        Point::new(0.0, 0.0),
    ])?)
}

/// The walkway band as a ring building (for off-map metrics in Fig. 5).
fn walkway_map(cfg: &ImuConfig) -> Result<CampusMap, DatasetError> {
    let half = cfg.walkway_width_m / 2.0;
    let w = cfg.loop_width_m;
    let h = cfg.loop_height_m;
    let outer = Polygon::rectangle(-half, -half, w + half, h + half)?;
    let inner = Polygon::rectangle(half, half, w - half, h - half)?;
    Ok(CampusMap::new(vec![
        Building::new(outer, 1)?.with_hole(inner)
    ])?)
}

/// Time-varying walking speed (smooth, strictly positive).
fn walking_speed(cfg: &ImuConfig, t: f64) -> f64 {
    let slow = 0.12 * (2.0 * std::f64::consts::PI * 0.023 * t).sin();
    let slower = 0.07 * (2.0 * std::f64::consts::PI * 0.011 * t + 1.0).sin();
    (cfg.base_speed_mps + slow + slower).max(0.4)
}

/// Turns raw measured streams into the 10-dim feature vector, emulating a
/// pedestrian dead-reckoning frontend (gyro-integrated heading + step-count
/// speed model).
#[allow(clippy::too_many_arguments)]
fn featurize(
    cfg: &ImuConfig,
    gyro_z: &[f64],
    accel_fwd: &[f64],
    accel_lat: &[f64],
    accel_vert: &[f64],
    compass: f64,
    dt: f64,
    rng: &mut StdRng,
) -> ImuSegment {
    let n = gyro_z.len() as f64;
    let total_turn: f64 = gyro_z.iter().map(|g| g * dt).sum();
    let gyro_mean: f64 = gyro_z.iter().sum::<f64>() / n;
    let gyro_std = std_of(gyro_z, gyro_mean);

    let xy_mean: f64 = accel_fwd
        .iter()
        .zip(accel_lat)
        .map(|(f, l)| (f * f + l * l).sqrt())
        .sum::<f64>()
        / n;

    let vert_mean: f64 = accel_vert.iter().sum::<f64>() / n;
    let vert_std = std_of(accel_vert, vert_mean);

    // Step counting: zero crossings of the detrended vertical channel.
    let mut crossings = 0usize;
    let mut prev_sign = 0i8;
    for &a in accel_vert {
        let s = if a - vert_mean > 0.0 { 1 } else { -1 };
        if prev_sign != 0 && s != prev_sign {
            crossings += 1;
        }
        prev_sign = s;
    }
    let steps = crossings as f64 / 2.0;

    // Dead reckoning: integrate gyro heading from the compass fix and a
    // step-model speed with (mis)calibrated stride length.
    let stride = 0.72 * (1.0 + cfg.stride_error * standard_normal(rng));
    let duration = n * dt;
    let est_speed = steps * stride / duration;
    let mut heading = compass;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for &g in gyro_z {
        heading += g * dt;
        dx += est_speed * heading.cos() * dt;
        dy += est_speed * heading.sin() * dt;
    }

    ImuSegment {
        features: [
            total_turn,
            gyro_mean,
            gyro_std,
            xy_mean,
            vert_std,
            steps / 100.0, // keep magnitudes comparable
            dx,
            dy,
            compass.sin(),
            compass.cos(),
        ],
    }
}

fn std_of(xs: &[f64], mean: f64) -> f64 {
    (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ImuDataset {
        ImuDataset::generate(&ImuConfig::small()).unwrap()
    }

    #[test]
    fn reference_points_on_walkway() {
        let d = small();
        assert_eq!(d.reference_points.len(), 25); // num_refs + 1
        for p in &d.reference_points {
            assert!(
                d.walkway.is_accessible(*p),
                "reference {p} should lie on the walkway band"
            );
        }
    }

    #[test]
    fn path_counts_and_split() {
        let d = small();
        assert_eq!(d.train.len() + d.val.len() + d.test.len(), 120);
        assert!(d.train.len() > d.val.len());
        assert!(!d.test.is_empty());
    }

    #[test]
    fn paths_respect_length_bound() {
        let d = small();
        for p in d.train.iter().chain(&d.val).chain(&d.test) {
            assert!(!p.segments.is_empty());
            assert!(p.segments.len() <= d.max_segments);
            assert!(p.start_ref + p.segments.len() < d.reference_points.len());
        }
    }

    #[test]
    fn endpoints_match_reference_points() {
        let d = small();
        for p in d.train.iter().take(20) {
            assert_eq!(p.start_position, d.reference_points[p.start_ref]);
            assert_eq!(
                p.end_position,
                d.reference_points[p.start_ref + p.segments.len()]
            );
        }
    }

    #[test]
    fn dead_reckoning_is_informative_but_imperfect() {
        let d = small();
        let mut errs = Vec::new();
        let mut naive_errs = Vec::new();
        for p in d.test.iter() {
            let dr = p.dead_reckoned_end();
            errs.push(dr.distance(p.end_position));
            naive_errs.push(p.start_position.distance(p.end_position));
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        let naive = naive_errs.iter().sum::<f64>() / naive_errs.len() as f64;
        // DR must beat "predict the start position" by a wide margin but
        // not be perfect.
        assert!(mean < naive * 0.8, "DR mean {mean} vs naive {naive}");
        assert!(mean > 0.3, "DR should not be perfect, mean {mean}");
    }

    #[test]
    fn dead_reckoning_error_grows_with_length() {
        let d = small();
        let mut short = Vec::new();
        let mut long = Vec::new();
        for p in d.train.iter().chain(&d.val).chain(&d.test) {
            let err = p.dead_reckoned_end().distance(p.end_position);
            if p.segments.len() <= 2 {
                short.push(err);
            } else if p.segments.len() >= 4 {
                long.push(err);
            }
        }
        let short_mean = short.iter().sum::<f64>() / short.len().max(1) as f64;
        let long_mean = long.iter().sum::<f64>() / long.len().max(1) as f64;
        assert!(
            long_mean > short_mean,
            "error should accumulate: short {short_mean} vs long {long_mean}"
        );
    }

    #[test]
    fn segment_features_finite_and_shaped() {
        let d = small();
        for p in d.train.iter().take(10) {
            for s in &p.segments {
                assert_eq!(s.features().len(), SEGMENT_FEATURE_DIM);
                assert!(s.features().iter().all(|v| v.is_finite()));
                // sin^2 + cos^2 of the compass = 1.
                let sc = s.features()[8] * s.features()[8] + s.features()[9] * s.features()[9];
                assert!((sc - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ImuDataset::generate(&ImuConfig::small()).unwrap();
        let b = ImuDataset::generate(&ImuConfig::small()).unwrap();
        assert_eq!(a.train[0], b.train[0]);
        let mut cfg = ImuConfig::small();
        cfg.seed ^= 3;
        let c = ImuDataset::generate(&cfg).unwrap();
        assert_ne!(a.train[0].segments[0], c.train[0].segments[0]);
    }

    #[test]
    fn config_validation() {
        let mut cfg = ImuConfig::small();
        cfg.num_reference_points = 1;
        assert!(ImuDataset::generate(&cfg).is_err());
        let mut cfg = ImuConfig::small();
        cfg.max_path_segments = 0;
        assert!(ImuDataset::generate(&cfg).is_err());
        let mut cfg = ImuConfig::small();
        cfg.max_path_segments = 24;
        assert!(ImuDataset::generate(&cfg).is_err());
        let mut cfg = ImuConfig::small();
        cfg.train_fraction = 0.9;
        cfg.val_fraction = 0.2;
        assert!(ImuDataset::generate(&cfg).is_err());
        let mut cfg = ImuConfig::small();
        cfg.num_paths = 0;
        assert!(ImuDataset::generate(&cfg).is_err());
    }

    #[test]
    fn train_end_positions_helper() {
        let d = small();
        let ends = d.train_end_positions();
        assert_eq!(ends.len(), d.train.len());
        assert_eq!(ends[0], d.train[0].end_position);
    }

    #[test]
    fn reference_spacing_matches_walk_speed() {
        // Consecutive references are SAMPLES_PER_SEGMENT/rate seconds
        // apart; at ~1.35 m/s the along-path spacing must be ~15-25 m
        // (chord distance is shorter around corners, never longer).
        let cfg = ImuConfig::small();
        let d = ImuDataset::generate(&cfg).unwrap();
        let duration = SAMPLES_PER_SEGMENT as f64 / cfg.sample_rate_hz;
        let max_spacing = duration * 1.8; // generous speed bound
        for w in d.reference_points.windows(2) {
            let spacing = w[0].distance(w[1]);
            assert!(spacing <= max_spacing, "spacing {spacing} too large");
        }
    }
}
