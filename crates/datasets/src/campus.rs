//! Synthetic campus construction mirroring Fig. 1 of the paper: three
//! ring-shaped buildings whose central courtyards are inaccessible.

use crate::DatasetError;
use noble_geo::{Building, CampusMap, Point, Polygon};
use rand::rngs::StdRng;
use rand::Rng;

/// Geometry parameters of the synthetic campus.
#[derive(Debug, Clone, PartialEq)]
pub struct CampusConfig {
    /// Outer footprint width of each building (meters).
    pub building_width_m: f64,
    /// Outer footprint depth of each building (meters).
    pub building_depth_m: f64,
    /// Corridor ring thickness (footprint edge to courtyard edge).
    pub ring_thickness_m: f64,
    /// Gap between adjacent buildings.
    pub gap_m: f64,
    /// Floors per building.
    pub floors: usize,
}

impl Default for CampusConfig {
    fn default() -> Self {
        // Roughly UJI-scaled: three ~110 x 75 m buildings staggered over a
        // ~400 x 270 m site.
        CampusConfig {
            building_width_m: 110.0,
            building_depth_m: 75.0,
            ring_thickness_m: 16.0,
            gap_m: 30.0,
            floors: 4,
        }
    }
}

/// Builds the three-building campus of the UJI-like experiments.
///
/// Buildings are staggered diagonally (as in the aerial view of Fig. 1)
/// and each carries a central courtyard hole.
///
/// # Errors
///
/// Returns [`DatasetError::InvalidConfig`] for non-positive dimensions or a
/// ring thinner than required, and propagates geometry errors.
pub fn uji_campus(cfg: &CampusConfig) -> Result<CampusMap, DatasetError> {
    validate(cfg)?;
    let mut buildings = Vec::with_capacity(3);
    for i in 0..3 {
        let x0 = i as f64 * (cfg.building_width_m * 0.75 + cfg.gap_m);
        let y0 = i as f64 * (cfg.building_depth_m * 0.55 + cfg.gap_m * 0.5);
        buildings.push(ring_building(cfg, x0, y0)?);
    }
    Ok(CampusMap::new(buildings)?)
}

/// Builds the single-building IPIN-like site (smaller, no stagger).
///
/// # Errors
///
/// Same conditions as [`uji_campus`].
pub fn ipin_building(cfg: &CampusConfig) -> Result<CampusMap, DatasetError> {
    validate(cfg)?;
    Ok(CampusMap::new(vec![ring_building(cfg, 0.0, 0.0)?])?)
}

fn validate(cfg: &CampusConfig) -> Result<(), DatasetError> {
    if cfg.building_width_m <= 0.0 || cfg.building_depth_m <= 0.0 {
        return Err(DatasetError::InvalidConfig(
            "building dimensions must be positive".into(),
        ));
    }
    if cfg.ring_thickness_m <= 0.0
        || 2.0 * cfg.ring_thickness_m >= cfg.building_width_m.min(cfg.building_depth_m)
    {
        return Err(DatasetError::InvalidConfig(format!(
            "ring thickness {} incompatible with footprint {}x{}",
            cfg.ring_thickness_m, cfg.building_width_m, cfg.building_depth_m
        )));
    }
    if cfg.floors == 0 {
        return Err(DatasetError::InvalidConfig(
            "at least one floor required".into(),
        ));
    }
    Ok(())
}

fn ring_building(cfg: &CampusConfig, x0: f64, y0: f64) -> Result<Building, DatasetError> {
    let footprint =
        Polygon::rectangle(x0, y0, x0 + cfg.building_width_m, y0 + cfg.building_depth_m)?;
    let t = cfg.ring_thickness_m;
    let hole = Polygon::rectangle(
        x0 + t,
        y0 + t,
        x0 + cfg.building_width_m - t,
        y0 + cfg.building_depth_m - t,
    )?;
    Ok(Building::new(footprint, cfg.floors)?.with_hole(hole))
}

/// Draws a uniformly distributed accessible point inside building
/// `building_index` of `map` by rejection sampling.
///
/// # Errors
///
/// - [`DatasetError::InvalidConfig`] for an out-of-range building index.
/// - [`DatasetError::SamplingFailed`] if 10 000 rejections occur (a
///   degenerate plan; cannot happen for ring buildings).
pub fn sample_accessible_point(
    map: &CampusMap,
    building_index: usize,
    rng: &mut StdRng,
) -> Result<Point, DatasetError> {
    let building = map
        .buildings()
        .get(building_index)
        .ok_or_else(|| DatasetError::InvalidConfig(format!("no building {building_index}")))?;
    let (min, max) = building.footprint().bounding_box();
    const MAX_ATTEMPTS: usize = 10_000;
    for _ in 0..MAX_ATTEMPTS {
        let p = Point::new(rng.gen_range(min.x..max.x), rng.gen_range(min.y..max.y));
        if building.contains_accessible(p) {
            return Ok(p);
        }
    }
    Err(DatasetError::SamplingFailed {
        attempts: MAX_ATTEMPTS,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn default_campus_has_three_ring_buildings() {
        let map = uji_campus(&CampusConfig::default()).unwrap();
        assert_eq!(map.building_count(), 3);
        for b in map.buildings() {
            assert_eq!(b.holes().len(), 1);
            assert_eq!(b.floors(), 4);
        }
    }

    #[test]
    fn campus_footprint_spans_site() {
        let map = uji_campus(&CampusConfig::default()).unwrap();
        let (min, max) = map.bounding_box();
        assert!(max.x - min.x > 250.0);
        assert!(max.y - min.y > 150.0);
    }

    #[test]
    fn courtyards_are_inaccessible() {
        let map = uji_campus(&CampusConfig::default()).unwrap();
        for b in map.buildings() {
            let center = b.footprint().vertex_centroid();
            assert!(
                !b.contains_accessible(center),
                "courtyard center must be off-map"
            );
        }
    }

    #[test]
    fn buildings_do_not_overlap() {
        let map = uji_campus(&CampusConfig::default()).unwrap();
        let b = map.buildings();
        for i in 0..b.len() {
            for j in (i + 1)..b.len() {
                let (min_i, max_i) = b[i].footprint().bounding_box();
                let (min_j, max_j) = b[j].footprint().bounding_box();
                let overlap_x = min_i.x < max_j.x && min_j.x < max_i.x;
                let overlap_y = min_i.y < max_j.y && min_j.y < max_i.y;
                assert!(!(overlap_x && overlap_y), "buildings {i} and {j} overlap");
            }
        }
    }

    #[test]
    fn ipin_site_is_single_building() {
        let cfg = CampusConfig {
            building_width_m: 40.0,
            building_depth_m: 30.0,
            ring_thickness_m: 8.0,
            floors: 2,
            ..CampusConfig::default()
        };
        let map = ipin_building(&cfg).unwrap();
        assert_eq!(map.building_count(), 1);
        assert_eq!(map.buildings()[0].floors(), 2);
    }

    #[test]
    fn config_validation() {
        let cfg = CampusConfig {
            ring_thickness_m: 100.0,
            ..CampusConfig::default()
        };
        assert!(uji_campus(&cfg).is_err());
        let cfg = CampusConfig {
            floors: 0,
            ..CampusConfig::default()
        };
        assert!(uji_campus(&cfg).is_err());
        let cfg = CampusConfig {
            building_width_m: -5.0,
            ..CampusConfig::default()
        };
        assert!(uji_campus(&cfg).is_err());
    }

    #[test]
    fn sampled_points_are_accessible_and_deterministic() {
        let map = uji_campus(&CampusConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let p = sample_accessible_point(&map, 1, &mut rng).unwrap();
            assert!(map.buildings()[1].contains_accessible(p));
        }
        let a = sample_accessible_point(&map, 0, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = sample_accessible_point(&map, 0, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
        assert!(sample_accessible_point(&map, 7, &mut rng).is_err());
    }
}
