//! Received-signal-strength simulation: wireless access points and the
//! log-distance path-loss channel that turns positions into fingerprints.

use noble_geo::Point;
use rand::rngs::StdRng;
use rand::Rng;

/// Sentinel RSSI value for "access point not detected".
///
/// UJIIndoorLoc stores `+100` for undetected WAPs; we keep the same
/// convention so normalization code matches published pipelines.
pub const NOT_DETECTED: f64 = 100.0;

/// A wireless access point at a fixed position and floor.
#[derive(Debug, Clone, PartialEq)]
pub struct Wap {
    /// Planar position in the campus frame (meters).
    pub position: Point,
    /// Building the WAP is mounted in.
    pub building: usize,
    /// Floor the WAP is mounted on.
    pub floor: usize,
    /// Transmit power in dBm at the reference distance.
    pub tx_power_dbm: f64,
}

/// Log-distance path-loss channel with floor and wall attenuation and
/// log-normal shadowing.
///
/// `RSSI = tx - 10·n·log10(max(d, d0)/d0) - floor_loss·|Δfloor|
///         - wall_loss·(different building) + N(0, σ)`
///
/// readings below [`PathLossModel::detection_threshold_dbm`] come back as
/// [`NOT_DETECTED`], exactly like a real scan.
#[derive(Debug, Clone, PartialEq)]
pub struct PathLossModel {
    /// Path-loss exponent `n` (2.0 free space, 3–4 indoors).
    pub exponent: f64,
    /// Reference distance `d0` in meters.
    pub reference_distance_m: f64,
    /// Attenuation per floor crossed, in dB.
    pub floor_loss_db: f64,
    /// Attenuation for cross-building propagation, in dB.
    pub wall_loss_db: f64,
    /// Standard deviation of log-normal shadowing, in dB.
    pub shadowing_sigma_db: f64,
    /// Receiver sensitivity: weaker signals are reported as
    /// [`NOT_DETECTED`].
    pub detection_threshold_dbm: f64,
    /// Nominal per-floor height in meters (adds vertical distance).
    pub floor_height_m: f64,
}

impl Default for PathLossModel {
    fn default() -> Self {
        PathLossModel {
            exponent: 3.2,
            reference_distance_m: 1.0,
            floor_loss_db: 14.0,
            wall_loss_db: 11.0,
            shadowing_sigma_db: 3.0,
            detection_threshold_dbm: -95.0,
            floor_height_m: 3.5,
        }
    }
}

impl PathLossModel {
    /// Simulates the RSSI (dBm) a receiver at `(position, building, floor)`
    /// observes from `wap`, or [`NOT_DETECTED`].
    ///
    /// Shadowing is drawn from `rng`; pass a seeded generator for
    /// reproducibility.
    pub fn rssi(
        &self,
        wap: &Wap,
        position: Point,
        building: usize,
        floor: usize,
        rng: &mut StdRng,
    ) -> f64 {
        let planar = wap.position.distance(position);
        let dz = (wap.floor as f64 - floor as f64) * self.floor_height_m;
        let d = (planar * planar + dz * dz)
            .sqrt()
            .max(self.reference_distance_m);
        let mut loss = 10.0 * self.exponent * (d / self.reference_distance_m).log10();
        loss += self.floor_loss_db * (wap.floor as f64 - floor as f64).abs();
        if wap.building != building {
            loss += self.wall_loss_db;
        }
        let shadow = self.shadowing_sigma_db * standard_normal(rng);
        let rssi = wap.tx_power_dbm - loss + shadow;
        if rssi < self.detection_threshold_dbm {
            NOT_DETECTED
        } else {
            rssi.min(0.0)
        }
    }

    /// Simulates a full fingerprint: one reading per WAP.
    pub fn fingerprint(
        &self,
        waps: &[Wap],
        position: Point,
        building: usize,
        floor: usize,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        waps.iter()
            .map(|w| self.rssi(w, position, building, floor, rng))
            .collect()
    }
}

/// Normalizes one raw RSSI reading into `[0, 1]` for network input:
/// [`NOT_DETECTED`] maps to `0`, the detection threshold to a small
/// positive value, and `0 dBm` to `1`.
pub fn normalize_rssi(raw: f64, detection_threshold_dbm: f64) -> f64 {
    if raw == NOT_DETECTED {
        return 0.0;
    }
    let span = -detection_threshold_dbm; // e.g. 95
    ((raw - detection_threshold_dbm) / span).clamp(0.0, 1.0)
}

/// Normalizes a whole fingerprint; see [`normalize_rssi`].
pub fn normalize_fingerprint(raw: &[f64], detection_threshold_dbm: f64) -> Vec<f64> {
    raw.iter()
        .map(|&v| normalize_rssi(v, detection_threshold_dbm))
        .collect()
}

pub(crate) fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn quiet_model() -> PathLossModel {
        PathLossModel {
            shadowing_sigma_db: 0.0,
            ..PathLossModel::default()
        }
    }

    fn wap_at(x: f64, y: f64) -> Wap {
        Wap {
            position: Point::new(x, y),
            building: 0,
            floor: 0,
            tx_power_dbm: -30.0,
        }
    }

    #[test]
    fn rssi_decays_with_distance() {
        let m = quiet_model();
        let w = wap_at(0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let near = m.rssi(&w, Point::new(2.0, 0.0), 0, 0, &mut rng);
        let far = m.rssi(&w, Point::new(20.0, 0.0), 0, 0, &mut rng);
        assert!(near > far, "near {near} should exceed far {far}");
    }

    #[test]
    fn rssi_below_threshold_not_detected() {
        let m = quiet_model();
        let w = wap_at(0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let vanished = m.rssi(&w, Point::new(5000.0, 0.0), 0, 0, &mut rng);
        assert_eq!(vanished, NOT_DETECTED);
    }

    #[test]
    fn floor_and_wall_attenuation() {
        let m = quiet_model();
        let w = wap_at(0.0, 0.0);
        let p = Point::new(5.0, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let same = m.rssi(&w, p, 0, 0, &mut rng);
        let other_floor = m.rssi(&w, p, 0, 1, &mut rng);
        let other_building = m.rssi(&w, p, 1, 0, &mut rng);
        assert!(same > other_floor);
        assert!(same > other_building);
        // Floor crossing includes both the dB penalty and vertical distance.
        assert!(same - other_floor >= m.floor_loss_db - 1.0);
    }

    #[test]
    fn reference_distance_clamps() {
        let m = quiet_model();
        let w = wap_at(0.0, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let at_zero = m.rssi(&w, Point::new(0.0, 0.0), 0, 0, &mut rng);
        let at_half = m.rssi(&w, Point::new(0.5, 0.0), 0, 0, &mut rng);
        assert_eq!(at_zero, at_half, "distances under d0 are clamped");
        assert!(at_zero <= 0.0, "RSSI capped at 0 dBm");
    }

    #[test]
    fn shadowing_is_deterministic_per_seed() {
        let m = PathLossModel::default();
        let w = wap_at(0.0, 0.0);
        let p = Point::new(10.0, 0.0);
        let a = m.rssi(&w, p, 0, 0, &mut StdRng::seed_from_u64(5));
        let b = m.rssi(&w, p, 0, 0, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprint_has_one_entry_per_wap() {
        let m = quiet_model();
        let waps = vec![wap_at(0.0, 0.0), wap_at(50.0, 0.0), wap_at(5000.0, 0.0)];
        let mut rng = StdRng::seed_from_u64(1);
        let fp = m.fingerprint(&waps, Point::new(1.0, 1.0), 0, 0, &mut rng);
        assert_eq!(fp.len(), 3);
        assert_eq!(fp[2], NOT_DETECTED);
    }

    #[test]
    fn normalization_bounds() {
        assert_eq!(normalize_rssi(NOT_DETECTED, -95.0), 0.0);
        assert_eq!(normalize_rssi(0.0, -95.0), 1.0);
        assert_eq!(normalize_rssi(-95.0, -95.0), 0.0);
        let mid = normalize_rssi(-47.5, -95.0);
        assert!((mid - 0.5).abs() < 1e-12);
        let v = normalize_fingerprint(&[NOT_DETECTED, -50.0], -95.0);
        assert_eq!(v[0], 0.0);
        assert!(v[1] > 0.0 && v[1] < 1.0);
    }
}
