//! Full WiFi localization campaign: NObLe against every baseline of the
//! paper's Table II, on one synthetic multi-building campus.
//!
//! Run with: `cargo run --release --example wifi_localization`
//! (add `NOBLE_SMALL=1` to shrink the campaign for a fast demo)

use noble_suite::noble::eval::StructureReport;
use noble_suite::noble::report::{meters, TextTable};
use noble_suite::noble::wifi::baselines::{
    DeepRegression, KnnFingerprint, ManifoldKind, ManifoldRegression, ManifoldRegressionConfig,
    RegressionConfig,
};
use noble_suite::noble::wifi::{WifiNoble, WifiNobleConfig};
use noble_suite::noble_datasets::{uji_campaign, UjiConfig};
use noble_suite::noble_geo::Point;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let small = std::env::var("NOBLE_SMALL").is_ok();
    let campaign = if small {
        uji_campaign(&UjiConfig::small())?
    } else {
        let cfg = UjiConfig {
            references_per_floor: 40,
            samples_per_reference: 5,
            waps_per_building_floor: 10,
            ..UjiConfig::default()
        };
        uji_campaign(&cfg)?
    };
    println!(
        "campaign: {} buildings, {} WAPs, {} train / {} val / {} test fingerprints\n",
        campaign.map.building_count(),
        campaign.num_waps(),
        campaign.train.len(),
        campaign.val.len(),
        campaign.test.len()
    );

    let mut table = TextTable::new(vec![
        "MODEL".into(),
        "MEAN (M)".into(),
        "MEDIAN (M)".into(),
        "ON-MAP %".into(),
    ]);
    let features = campaign.features(&campaign.test);
    let truth: Vec<Point> = campaign.test.iter().map(|s| s.position).collect();

    let structure = |preds: &[Point]| -> Result<String, Box<dyn std::error::Error>> {
        let r = StructureReport::compute(preds, &campaign.map)?;
        Ok(format!("{:.1}", r.on_map_fraction * 100.0))
    };
    let err = |preds: &[Point]| noble_suite::noble::eval::position_error_summary(preds, &truth);

    // NObLe.
    let noble_cfg = if small {
        WifiNobleConfig::small()
    } else {
        WifiNobleConfig {
            tau: 2.0,
            coarse_l: Some(10.0),
            ..WifiNobleConfig::default()
        }
    };
    let mut noble_model = WifiNoble::train(&campaign, &noble_cfg)?;
    let noble_preds: Vec<Point> = noble_model
        .predict(&features)?
        .into_iter()
        .map(|p| p.position)
        .collect();
    let s = err(&noble_preds)?;
    table.add_row(vec![
        "NObLe".into(),
        meters(s.mean),
        meters(s.median),
        structure(&noble_preds)?,
    ]);

    // Deep regression, raw and projected.
    let reg_cfg = if small {
        RegressionConfig::small()
    } else {
        RegressionConfig::default()
    };
    let mut regression = DeepRegression::train(&campaign, &reg_cfg)?;
    let raw = regression.predict(&features)?;
    let s = err(&raw)?;
    table.add_row(vec![
        "Deep Regression".into(),
        meters(s.mean),
        meters(s.median),
        structure(&raw)?,
    ]);
    let projected = regression.predict_projected(&features, &campaign)?;
    let s = err(&projected)?;
    table.add_row(vec![
        "Regression Projection".into(),
        meters(s.mean),
        meters(s.median),
        structure(&projected)?,
    ]);

    // Manifold embeddings.
    for kind in [ManifoldKind::Isomap, ManifoldKind::Lle] {
        let cfg = if small {
            ManifoldRegressionConfig::small(kind)
        } else {
            ManifoldRegressionConfig {
                kind,
                ..ManifoldRegressionConfig::default()
            }
        };
        let mut model = ManifoldRegression::train(&campaign, &cfg)?;
        let preds = model.predict(&features)?;
        let s = err(&preds)?;
        table.add_row(vec![
            format!("{kind:?} Regression"),
            meters(s.mean),
            meters(s.median),
            structure(&preds)?,
        ]);
    }

    // Classic weighted kNN.
    let knn = KnnFingerprint::fit(&campaign, 5)?;
    let knn_preds: Vec<Point> = (0..features.rows())
        .map(|i| knn.predict_one(features.row(i)).0)
        .collect();
    let s = err(&knn_preds)?;
    table.add_row(vec![
        "WkNN Fingerprint".into(),
        meters(s.mean),
        meters(s.median),
        structure(&knn_preds)?,
    ]);

    println!("{}", table.render());
    Ok(())
}
