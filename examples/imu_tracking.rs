//! IMU device tracking: walk a pedestrian around a campus loop, then
//! compare NObLe's end-position tracking against dead reckoning and deep
//! regression (the paper's Table III experiment at demo scale).
//!
//! Run with: `cargo run --release --example imu_tracking`

use noble_suite::noble::imu::baselines::{
    DeadReckoning, ImuDeepRegression, ImuRegressionConfig, MapAssistedDeadReckoning,
};
use noble_suite::noble::imu::{ImuNoble, ImuNobleConfig};
use noble_suite::noble::report::{meters, TextTable};
use noble_suite::noble_datasets::{ImuConfig, ImuDataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 160 m x 60 m loop, 100 reference points, 2000 constructed paths.
    let cfg = ImuConfig {
        num_reference_points: 100,
        num_paths: 2000,
        max_path_segments: 10,
        ..ImuConfig::default()
    };
    let dataset = ImuDataset::generate(&cfg)?;
    println!(
        "dataset: {} reference points, {} train / {} val / {} test paths",
        dataset.reference_points.len(),
        dataset.train.len(),
        dataset.val.len(),
        dataset.test.len()
    );

    let mut table = TextTable::new(vec!["MODEL".into(), "MEAN (M)".into(), "MEDIAN (M)".into()]);

    let dr = DeadReckoning::evaluate(&dataset.test)?;
    table.add_row(vec![
        "Dead Reckoning".into(),
        meters(dr.mean),
        meters(dr.median),
    ]);

    let assisted = MapAssistedDeadReckoning::evaluate(&dataset, &dataset.test)?;
    table.add_row(vec![
        "Map-Assisted DR".into(),
        meters(assisted.mean),
        meters(assisted.median),
    ]);

    let mut regression = ImuDeepRegression::train(&dataset, &ImuRegressionConfig::default())?;
    let reg = regression.evaluate(&dataset.test)?;
    table.add_row(vec![
        "Deep Regression".into(),
        meters(reg.mean),
        meters(reg.median),
    ]);

    let noble_cfg = ImuNobleConfig {
        tau: 1.0,
        displacement_loss_weight: 4.0,
        epochs: 80,
        ..ImuNobleConfig::default()
    };
    let mut noble_model = ImuNoble::train(&dataset, &noble_cfg)?;
    let report = noble_model.evaluate(&dataset, &dataset.test)?;
    table.add_row(vec![
        "NObLe".into(),
        meters(report.position_error.mean),
        meters(report.position_error.median),
    ]);

    println!("\n{}", table.render());
    println!(
        "NObLe end-class accuracy: {:.1}% | structure: {}",
        report.class_accuracy * 100.0,
        report.structure
    );
    Ok(())
}
