//! Edge-device energy profile of the NObLe models: the paper's §IV-C /
//! §V-D argument that on-device inference plus inertial sensing beats GPS
//! by more than an order of magnitude.
//!
//! Run with: `cargo run --release --example energy_profile`

use noble_suite::noble::imu::{ImuNoble, ImuNobleConfig};
use noble_suite::noble::wifi::{WifiNoble, WifiNobleConfig};
use noble_suite::noble_datasets::{uji_campaign, ImuConfig, ImuDataset, UjiConfig};
use noble_suite::noble_energy::{mac_count, EnergyModel, SensorConstants, TrackingEnergyReport};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tx2 = EnergyModel::jetson_tx2();
    let mcu = EnergyModel::cortex_m7();

    // WiFi localizer.
    let campaign = uji_campaign(&UjiConfig::small())?;
    let wifi = WifiNoble::train(&campaign, &WifiNobleConfig::small())?;
    let wifi_macs = mac_count(&wifi.dense_shapes());
    println!(
        "WiFi localizer: {} dense layers, {wifi_macs} MACs/inference",
        wifi.dense_shapes().len()
    );
    for (name, device) in [("Jetson-TX2-like", &tx2), ("Cortex-M7-like", &mcu)] {
        let p = device.profile(wifi_macs);
        println!(
            "  {name:>16}: {:.2} ms, {:.5} J per fingerprint",
            p.latency_s * 1e3,
            p.energy_j
        );
    }

    // IMU tracker and the GPS comparison.
    let imu_cfg = ImuConfig {
        num_reference_points: 30,
        num_paths: 200,
        max_path_segments: 5,
        ..ImuConfig::default()
    };
    let dataset = ImuDataset::generate(&imu_cfg)?;
    let imu = ImuNoble::train(&dataset, &ImuNobleConfig::small())?;
    let imu_macs = mac_count(&imu.dense_shapes());
    let profile = tx2.profile(imu_macs);
    println!("\nIMU tracker: {imu_macs} MACs/inference");
    let report = TrackingEnergyReport::compare(profile, SensorConstants::default(), 8.0);
    println!("  {report}");
    println!(
        "\n=> NObLe tracking is {:.0}x cheaper than GPS for the same window (paper: ~27x).",
        report.advantage
    );
    Ok(())
}
