//! Quickstart: train NObLe on a synthetic WiFi fingerprint campaign and
//! localize a held-out scan, in under twenty lines of code.
//!
//! Run with: `cargo run --release --example quickstart`

use noble_suite::noble::wifi::{WifiNoble, WifiNobleConfig};
use noble_suite::noble_datasets::{uji_campaign, UjiConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small three-building campus with simulated RSSI fingerprints.
    let campaign = uji_campaign(&UjiConfig::small())?;

    // Train the structure-aware localizer.
    let mut model = WifiNoble::train(&campaign, &WifiNobleConfig::small())?;

    // Localize one held-out fingerprint...
    let features = campaign.features(&campaign.test[..1]);
    let prediction = &model.predict(&features)?[0];
    let truth = &campaign.test[0];
    println!(
        "predicted {} in building {} floor {}",
        prediction.position, prediction.building, prediction.floor
    );
    println!(
        "actual    {} in building {} floor {}",
        truth.position, truth.building, truth.floor
    );

    // ...and evaluate the whole held-out set.
    let report = model.evaluate(&campaign, &campaign.test)?;
    println!(
        "test set: mean error {:.2} m, median {:.2} m, building accuracy {:.1}%",
        report.position_error.mean,
        report.position_error.median,
        report.building_accuracy * 100.0
    );
    Ok(())
}
