//! Manifold learning on localization signals: fit Isomap and LLE on RSSI
//! fingerprints and inspect how well input-space embeddings recover the
//! campus geometry — the premise the paper challenges in §III-A.
//!
//! Run with: `cargo run --release --example manifold_compare`

use noble_suite::noble_datasets::{uji_campaign, UjiConfig};
use noble_suite::noble_linalg::euclidean_distance;
use noble_suite::noble_manifold::{Isomap, Lle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let campaign = uji_campaign(&UjiConfig::small())?;
    let features = campaign.features(&campaign.train);
    println!(
        "fitting Isomap and LLE on {} fingerprints of dimension {}\n",
        features.rows(),
        features.cols()
    );

    let isomap = Isomap::fit(&features, 8, 2, 42)?;
    let lle = Lle::fit(&features, 8, 2, 1e-3, 42)?;

    // Correlate embedding distance with true position distance over random
    // pairs: a perfect manifold recovery gives correlation 1; noisy RSSI
    // makes input-space neighborhoods unreliable (the paper's motivation).
    for (name, embedding, retained) in [
        (
            "Isomap",
            isomap.embedding(),
            Some(isomap.retained_indices()),
        ),
        ("LLE", lle.embedding(), None),
    ] {
        let mut embed_d = Vec::new();
        let mut true_d = Vec::new();
        let n = embedding.rows();
        for i in (0..n).step_by(3) {
            for j in (i + 1..n).step_by(7) {
                embed_d.push(euclidean_distance(embedding.row(i), embedding.row(j)));
                let (oi, oj) = match retained {
                    Some(r) => (r[i], r[j]),
                    None => (i, j),
                };
                true_d.push(
                    campaign.train[oi]
                        .position
                        .distance(campaign.train[oj].position),
                );
            }
        }
        let corr = correlation(&embed_d, &true_d);
        println!(
            "{name:>7}: embedding of {} points, distance correlation with ground truth = {corr:.3}",
            n
        );
    }
    println!("\ncorrelations well below 1 illustrate why NObLe avoids input-space neighborhoods.");
    Ok(())
}

fn correlation(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    cov / (va.sqrt() * vb.sqrt()).max(1e-12)
}
