//! Facade crate for the NObLe localization suite.
//!
//! Re-exports every member crate under one roof so the repository-level
//! examples and integration tests can `use noble_suite::...` without
//! spelling out individual crate names. Downstream users should depend on
//! the individual crates (`noble`, `noble-nn`, ...) directly.
//!
//! # Example
//!
//! ```
//! use noble_suite::noble_geo::Point;
//! use noble_suite::noble_quantize::{DecodePolicy, GridQuantizer};
//!
//! let samples = vec![Point::new(0.0, 0.0), Point::new(10.0, 10.0)];
//! let q = GridQuantizer::fit(&samples, 1.0, DecodePolicy::SampleMean).unwrap();
//! assert_eq!(q.num_classes(), 2);
//! ```

pub use noble;
pub use noble_datasets;
pub use noble_energy;
pub use noble_geo;
pub use noble_linalg;
pub use noble_manifold;
pub use noble_net;
pub use noble_nn;
pub use noble_quantize;
pub use noble_serve;
