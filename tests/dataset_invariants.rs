//! Cross-crate dataset invariants: generated campaigns must be consistent
//! with the geometry and signal model they are built on.

use noble_suite::noble_datasets::rssi::{normalize_fingerprint, normalize_rssi};
use noble_suite::noble_datasets::{
    uji_campaign, ImuConfig, ImuDataset, UjiConfig, NOT_DETECTED, SAMPLES_PER_SEGMENT,
};
use proptest::prelude::*;

#[test]
fn wifi_samples_consistent_with_map_and_waps() {
    let campaign = uji_campaign(&UjiConfig::small()).unwrap();
    for s in campaign
        .train
        .iter()
        .chain(&campaign.val)
        .chain(&campaign.test)
    {
        assert_eq!(s.rssi.len(), campaign.num_waps());
        assert_eq!(
            campaign.map.building_containing(s.position),
            Some(s.building)
        );
        for &r in &s.rssi {
            assert!(
                r == NOT_DETECTED || (-100.0..=0.0).contains(&r),
                "rssi {r} out of range"
            );
        }
    }
}

#[test]
fn wifi_val_split_disjoint_from_train() {
    let campaign = uji_campaign(&UjiConfig::small()).unwrap();
    // Samples are cloned into splits; verify no fingerprint vector appears
    // in both train and val (positions may repeat across references).
    for v in &campaign.val {
        assert!(
            !campaign
                .train
                .iter()
                .any(|t| t.rssi == v.rssi && t.position == v.position),
            "validation sample duplicated in train"
        );
    }
}

#[test]
fn imu_paths_have_bounded_displacement() {
    let d = ImuDataset::generate(&ImuConfig::small()).unwrap();
    let dt = SAMPLES_PER_SEGMENT as f64 / 50.0;
    for p in d.train.iter().chain(&d.val).chain(&d.test) {
        // A pedestrian cannot displace farther than max speed x time.
        let bound = 2.0 * dt * p.segments.len() as f64;
        assert!(
            p.true_displacement().length() <= bound,
            "displacement {} exceeds kinematic bound {bound}",
            p.true_displacement().length()
        );
    }
}

#[test]
fn imu_reference_points_spaced_reasonably() {
    let d = ImuDataset::generate(&ImuConfig::small()).unwrap();
    for w in d.reference_points.windows(2) {
        let gap = w[0].distance(w[1]);
        assert!(gap > 1.0, "references collapsed: {gap}");
        assert!(gap < 40.0, "references too far apart: {gap}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Normalization maps the full dBm range into [0, 1] monotonically.
    #[test]
    fn rssi_normalization_monotone(a in -95.0f64..0.0, b in -95.0f64..0.0) {
        let na = normalize_rssi(a, -95.0);
        let nb = normalize_rssi(b, -95.0);
        prop_assert!((0.0..=1.0).contains(&na));
        if a < b {
            prop_assert!(na <= nb);
        }
    }

    /// NOT_DETECTED always normalizes to exactly zero regardless of the
    /// neighbors in the fingerprint.
    #[test]
    fn not_detected_is_zero(values in prop::collection::vec(-95.0f64..0.0, 1..8)) {
        let mut raw = values.clone();
        raw.push(NOT_DETECTED);
        let norm = normalize_fingerprint(&raw, -95.0);
        prop_assert_eq!(norm[norm.len() - 1], 0.0);
        for v in &norm[..norm.len() - 1] {
            prop_assert!((0.0..=1.0).contains(v));
        }
    }
}
