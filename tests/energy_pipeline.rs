//! Energy pipeline: trained model shapes flow into the energy model and
//! reproduce the paper's qualitative claims.

use noble_suite::noble::imu::{ImuNoble, ImuNobleConfig};
use noble_suite::noble::wifi::{WifiNoble, WifiNobleConfig};
use noble_suite::noble_datasets::{uji_campaign, ImuConfig, ImuDataset, UjiConfig};
use noble_suite::noble_energy::{mac_count, EnergyModel, SensorConstants, TrackingEnergyReport};

#[test]
fn wifi_inference_is_millijoule_scale() {
    let campaign = uji_campaign(&UjiConfig::small()).unwrap();
    let mut cfg = WifiNobleConfig::small();
    cfg.epochs = 3;
    let model = WifiNoble::train(&campaign, &cfg).unwrap();
    let profile = EnergyModel::jetson_tx2().profile(mac_count(&model.dense_shapes()));
    // Paper §IV-C: 0.00518 J, 2 ms. Same order of magnitude required.
    assert!(
        profile.energy_j > 1e-4 && profile.energy_j < 0.1,
        "energy {}",
        profile.energy_j
    );
    assert!(
        profile.latency_s > 1e-4 && profile.latency_s < 0.05,
        "latency {}",
        profile.latency_s
    );
}

#[test]
fn imu_tracking_beats_gps_by_large_factor() {
    let mut dcfg = ImuConfig::small();
    dcfg.num_paths = 120;
    let dataset = ImuDataset::generate(&dcfg).unwrap();
    let mut mcfg = ImuNobleConfig::small();
    mcfg.epochs = 3;
    let model = ImuNoble::train(&dataset, &mcfg).unwrap();
    let profile = EnergyModel::jetson_tx2().profile(mac_count(&model.dense_shapes()));
    let report = TrackingEnergyReport::compare(profile, SensorConstants::default(), 8.0);
    // Paper §V-D: 27x. Our featurized model is smaller, so the advantage
    // can only be larger; require the paper's conclusion (>20x) to hold.
    assert!(report.advantage > 20.0, "advantage {}", report.advantage);
    assert!(report.noble_total_j < 1.0);
    assert!((report.gps_j - 5.925).abs() < 1e-9);
}

#[test]
fn energy_model_orders_devices_sensibly() {
    let macs = 500_000;
    let tx2 = EnergyModel::jetson_tx2().profile(macs);
    let mcu = EnergyModel::cortex_m7().profile(macs);
    assert!(mcu.latency_s > tx2.latency_s, "MCU should be slower");
    // For this workload the TX2's speed more than offsets its higher power.
    assert!(tx2.energy_j < mcu.energy_j * 10.0);
}
