//! Property-based tests of the neural-network substrate: gradients match
//! finite differences for arbitrary small networks and data.

use noble_suite::noble_linalg::Matrix;
use noble_suite::noble_nn::{
    Activation, BceWithLogitsLoss, Loss, Mlp, MseLoss, SoftmaxCrossEntropyLoss,
};
use proptest::prelude::*;

fn tiny_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-2.0f64..2.0, rows * cols)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// End-to-end MLP gradient vs central finite differences, randomized
    /// over inputs, targets and seed.
    #[test]
    fn mlp_gradient_matches_finite_difference(
        x_data in tiny_matrix(3, 4),
        t_data in tiny_matrix(3, 2),
        seed in 0u64..1000,
    ) {
        let x = Matrix::from_vec(3, 4, x_data).unwrap();
        let t = Matrix::from_vec(3, 2, t_data).unwrap();
        let mut mlp = Mlp::builder(4, seed)
            .dense(5)
            .activation(Activation::Tanh)
            .dense(2)
            .build();
        let out = mlp.forward(&x, true).unwrap();
        let (_, grad) = MseLoss.evaluate(&out, &t).unwrap();
        mlp.backward(&grad).unwrap();
        let analytic = {
            let params = mlp.params_mut();
            params[0].grad[(0, 0)]
        };

        let h = 1e-6;
        let loss_at = |delta: f64| -> f64 {
            let mut m = mlp.clone();
            {
                let mut params = m.params_mut();
                params[0].value[(0, 0)] += delta;
            }
            let out = m.forward(&x, true).unwrap();
            MseLoss.evaluate(&out, &t).unwrap().0
        };
        let numeric = (loss_at(h) - loss_at(-h)) / (2.0 * h);
        prop_assert!((analytic - numeric).abs() < 1e-5,
            "analytic {analytic} vs numeric {numeric}");
    }

    /// Softmax CE gradient rows always sum to ~0 (probability mass
    /// conservation) for arbitrary logits.
    #[test]
    fn softmax_ce_grad_rows_sum_zero(z_data in tiny_matrix(2, 5), class_a in 0usize..5, class_b in 0usize..5) {
        let z = Matrix::from_vec(2, 5, z_data).unwrap();
        let mut t = Matrix::zeros(2, 5);
        t[(0, class_a)] = 1.0;
        t[(1, class_b)] = 1.0;
        let (_, g) = SoftmaxCrossEntropyLoss.evaluate(&z, &t).unwrap();
        for i in 0..2 {
            let s: f64 = g.row(i).iter().sum();
            prop_assert!(s.abs() < 1e-10, "row {i} grad sum {s}");
        }
    }

    /// BCE with logits is always non-negative and finite, even for extreme
    /// logits.
    #[test]
    fn bce_nonnegative_finite(z_data in prop::collection::vec(-100.0f64..100.0, 6)) {
        let z = Matrix::from_vec(2, 3, z_data).unwrap();
        let t = Matrix::from_rows(&[vec![1.0, 0.0, 1.0], vec![0.0, 1.0, 0.0]]).unwrap();
        let (l, g) = BceWithLogitsLoss.evaluate(&z, &t).unwrap();
        prop_assert!(l >= 0.0 && l.is_finite());
        prop_assert!(g.as_slice().iter().all(|v| v.is_finite()));
    }

    /// One SGD step on a linear layer strictly decreases MSE for a small
    /// enough learning rate (descent property).
    #[test]
    fn sgd_step_decreases_loss(x_data in tiny_matrix(4, 3), t_data in tiny_matrix(4, 2), seed in 0u64..100) {
        use noble_suite::noble_nn::Optimizer;
        let x = Matrix::from_vec(4, 3, x_data).unwrap();
        let t = Matrix::from_vec(4, 2, t_data).unwrap();
        let mut mlp = Mlp::builder(3, seed).dense(2).build();
        let out = mlp.forward(&x, true).unwrap();
        let (l0, grad) = MseLoss.evaluate(&out, &t).unwrap();
        prop_assume!(l0 > 1e-9); // already at a minimum: nothing to descend
        mlp.backward(&grad).unwrap();
        let mut opt = Optimizer::sgd(1e-3);
        mlp.apply_gradients(&mut opt);
        let out1 = mlp.forward(&x, false).unwrap();
        let (l1, _) = MseLoss.evaluate(&out1, &t).unwrap();
        prop_assert!(l1 <= l0 + 1e-12, "loss rose from {l0} to {l1}");
    }
}
