//! Cross-crate manifold pipeline: embeddings of RSSI fingerprints must be
//! usable end to end (fit on landmarks, transform held-out scans, regress).

use noble_suite::noble_datasets::{uji_campaign, UjiConfig};
use noble_suite::noble_linalg::{euclidean_distance, Matrix};
use noble_suite::noble_manifold::{
    classical_mds, geodesic_distances, pairwise_distances, Isomap, Lle, NeighborGraph,
};

#[test]
fn isomap_embeds_train_and_test_fingerprints() {
    let campaign = uji_campaign(&UjiConfig::small()).unwrap();
    let train = campaign.features(&campaign.train);
    let isomap = Isomap::fit(&train, 8, 4, 3).unwrap();
    assert_eq!(isomap.embedding().cols(), 4);
    let test = campaign.features(&campaign.test);
    let embedded = isomap.transform(&test);
    assert_eq!(embedded.shape(), (test.rows(), 4));
    assert!(embedded.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn lle_embeds_train_and_test_fingerprints() {
    let campaign = uji_campaign(&UjiConfig::small()).unwrap();
    let train = campaign.features(&campaign.train);
    // Subsample to keep the eigenproblem small.
    let idx: Vec<usize> = (0..train.rows()).step_by(3).collect();
    let landmarks = train.select_rows(&idx);
    let lle = Lle::fit(&landmarks, 6, 3, 1e-3, 3).unwrap();
    let test = campaign.features(&campaign.test);
    let embedded = lle.transform(&test);
    assert_eq!(embedded.shape(), (test.rows(), 3));
    assert!(embedded.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn mds_on_geodesics_recovers_a_grid() {
    // Points on a 2-D grid: geodesic MDS through a kNN graph must recover
    // pairwise distances up to the inherent graph-metric inflation. A
    // 4-neighbor graph measures Manhattan-like path lengths, which exceed
    // Euclidean diagonals by up to sqrt(2) (~41 %), so the distortion
    // bound must sit above that floor; 0.75 catches real regressions
    // (wrong eigenvectors, broken centering) while tolerating the metric
    // mismatch.
    let mut rows = Vec::new();
    for i in 0..6 {
        for j in 0..6 {
            rows.push(vec![i as f64, j as f64]);
        }
    }
    let data = Matrix::from_rows(&rows).unwrap();
    let graph = NeighborGraph::knn_graph(&data, 4).unwrap();
    let geo = geodesic_distances(&graph).unwrap();
    let embedding = classical_mds(&geo, 2, 9).unwrap();
    // Compare embedding distances against original grid distances.
    let orig = pairwise_distances(&data);
    let mut max_rel = 0.0f64;
    let mut sum_rel = 0.0f64;
    let mut count = 0usize;
    for i in 0..data.rows() {
        for j in (i + 1)..data.rows() {
            let de = euclidean_distance(embedding.row(i), embedding.row(j));
            let rel = (de - orig[(i, j)]).abs() / orig[(i, j)].max(1.0);
            max_rel = max_rel.max(rel);
            sum_rel += rel;
            count += 1;
        }
    }
    assert!(max_rel < 0.75, "max relative distortion {max_rel}");
    // The *average* distortion must stay near the Manhattan-vs-Euclidean
    // floor (measured ~0.27 for a 6x6 grid); far above it means broken
    // eigenvectors or centering.
    let mean_rel = sum_rel / count as f64;
    assert!(mean_rel < 0.4, "mean relative distortion {mean_rel}");
}

#[test]
fn embedding_distance_correlates_with_position_distance() {
    // The premise of the manifold baselines: RSSI embeddings carry *some*
    // geometry (correlation well above 0) even though they are noisy.
    let campaign = uji_campaign(&UjiConfig::small()).unwrap();
    let train = campaign.features(&campaign.train);
    let isomap = Isomap::fit(&train, 8, 4, 5).unwrap();
    let e = isomap.embedding();
    let retained = isomap.retained_indices();
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for a in (0..e.rows()).step_by(5) {
        for b in (a + 1..e.rows()).step_by(11) {
            xs.push(euclidean_distance(e.row(a), e.row(b)));
            ys.push(
                campaign.train[retained[a]]
                    .position
                    .distance(campaign.train[retained[b]].position),
            );
        }
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(&ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    let corr = cov / (vx.sqrt() * vy.sqrt()).max(1e-12);
    assert!(
        corr > 0.3,
        "correlation {corr} too weak — embedding uninformative"
    );
}
