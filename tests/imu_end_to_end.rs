//! End-to-end IMU tracking: NObLe must beat the regression baseline, and
//! dead-reckoning error must accumulate with path length (the §V premise).

use noble_suite::noble::imu::baselines::{
    DeadReckoning, ImuDeepRegression, ImuRegressionConfig, MapAssistedDeadReckoning,
};
use noble_suite::noble::imu::{ImuNoble, ImuNobleConfig};
use noble_suite::noble_datasets::{ImuConfig, ImuDataset};

fn dataset() -> ImuDataset {
    // The location network needs a healthy ratio of training paths to
    // neighborhood classes (the paper has ~25 paths per class); 30
    // references at tau=2 give ~60 classes for ~1000 training paths.
    let cfg = ImuConfig {
        num_reference_points: 30,
        num_paths: 1600,
        max_path_segments: 6,
        seed: 77,
        ..ImuConfig::default()
    };
    ImuDataset::generate(&cfg).expect("dataset")
}

fn noble_config() -> ImuNobleConfig {
    ImuNobleConfig {
        tau: 2.0,
        hidden_dim: 96,
        displacement_loss_weight: 4.0,
        epochs: 100,
        ..ImuNobleConfig::default()
    }
}

#[test]
fn noble_beats_deep_regression() {
    let dataset = dataset();
    let mut noble_model = ImuNoble::train(&dataset, &noble_config()).expect("noble");
    let noble_report = noble_model.evaluate(&dataset, &dataset.test).expect("eval");

    let mut regression = ImuDeepRegression::train(
        &dataset,
        &ImuRegressionConfig {
            hidden_dim: 96,
            epochs: 40,
            ..ImuRegressionConfig::small()
        },
    )
    .expect("regression");
    let regression_summary = regression.evaluate(&dataset.test).expect("eval");

    assert!(
        noble_report.position_error.mean < regression_summary.mean,
        "NObLe {} must beat regression {}",
        noble_report.position_error.mean,
        regression_summary.mean
    );
}

#[test]
fn noble_median_is_far_below_mean() {
    // The paper's Table III signature: median 0.4 m vs mean 2.52 m —
    // correct classifications decode almost exactly.
    let dataset = dataset();
    let mut noble_model = ImuNoble::train(&dataset, &noble_config()).expect("noble");
    let report = noble_model.evaluate(&dataset, &dataset.test).expect("eval");
    assert!(
        report.position_error.median < report.position_error.mean * 0.6,
        "median {} should be well below mean {}",
        report.position_error.median,
        report.position_error.mean
    );
}

#[test]
fn dead_reckoning_error_accumulates_with_path_length() {
    let dataset = dataset();
    let mut short_errors = Vec::new();
    let mut long_errors = Vec::new();
    for p in dataset.test.iter().chain(&dataset.val) {
        let err = DeadReckoning::predict_one(p).distance(p.end_position);
        if p.segments.len() <= 2 {
            short_errors.push(err);
        } else if p.segments.len() >= 5 {
            long_errors.push(err);
        }
    }
    assert!(!short_errors.is_empty() && !long_errors.is_empty());
    let short_mean: f64 = short_errors.iter().sum::<f64>() / short_errors.len() as f64;
    let long_mean: f64 = long_errors.iter().sum::<f64>() / long_errors.len() as f64;
    assert!(
        long_mean > short_mean,
        "long-path error {long_mean} should exceed short-path error {short_mean}"
    );
}

#[test]
fn map_assistance_keeps_predictions_on_walkway() {
    let dataset = dataset();
    for p in dataset.test.iter().take(50) {
        let pred = MapAssistedDeadReckoning::predict_one(&dataset, p);
        assert!(
            dataset.walkway.is_accessible(pred),
            "map-assisted prediction {pred} left the walkway"
        );
    }
}

#[test]
fn noble_structure_awareness() {
    let dataset = dataset();
    let mut noble_model = ImuNoble::train(&dataset, &noble_config()).expect("noble");
    let report = noble_model.evaluate(&dataset, &dataset.test).expect("eval");
    assert!(
        report.structure.on_map_fraction > 0.8,
        "on-walkway fraction {}",
        report.structure.on_map_fraction
    );
}
