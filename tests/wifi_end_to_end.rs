//! End-to-end WiFi localization: the paper's headline claim on a small
//! synthetic campaign — NObLe must beat coordinate regression on both
//! accuracy and structure awareness.

use noble_suite::noble::eval::StructureReport;
use noble_suite::noble::wifi::baselines::{DeepRegression, KnnFingerprint, RegressionConfig};
use noble_suite::noble::wifi::{WifiNoble, WifiNobleConfig};
use noble_suite::noble_datasets::{uji_campaign, UjiConfig, WifiCampaign};
use noble_suite::noble_geo::Point;

fn campaign() -> WifiCampaign {
    let mut cfg = UjiConfig::small();
    cfg.references_per_floor = 16;
    cfg.samples_per_reference = 5;
    cfg.waps_per_building_floor = 6;
    cfg.test_samples_per_floor = 25;
    cfg.seed = 2024;
    uji_campaign(&cfg).expect("campaign generation")
}

fn noble_config() -> WifiNobleConfig {
    WifiNobleConfig {
        tau: 3.0,
        coarse_l: Some(12.0),
        hidden_dim: 96,
        epochs: 40,
        patience: None,
        ..WifiNobleConfig::default()
    }
}

#[test]
fn noble_beats_deep_regression_on_position_error() {
    let campaign = campaign();
    let mut noble_model = WifiNoble::train(&campaign, &noble_config()).expect("noble training");
    let noble_report = noble_model
        .evaluate(&campaign, &campaign.test)
        .expect("noble eval");

    let mut regression = DeepRegression::train(
        &campaign,
        &RegressionConfig {
            hidden_dim: 96,
            epochs: 40,
            ..RegressionConfig::small()
        },
    )
    .expect("regression training");
    let regression_summary = regression
        .evaluate(&campaign, &campaign.test, false)
        .expect("regression eval");

    assert!(
        noble_report.position_error.mean < regression_summary.mean,
        "NObLe mean {} must beat regression mean {}",
        noble_report.position_error.mean,
        regression_summary.mean
    );
    assert!(
        noble_report.position_error.median < regression_summary.median,
        "NObLe median {} must beat regression median {}",
        noble_report.position_error.median,
        regression_summary.median
    );
}

#[test]
fn noble_predictions_respect_structure() {
    let campaign = campaign();
    let mut noble_model = WifiNoble::train(&campaign, &noble_config()).expect("noble training");
    let features = campaign.features(&campaign.test);
    let preds: Vec<Point> = noble_model
        .predict(&features)
        .expect("predict")
        .into_iter()
        .map(|p| p.position)
        .collect();
    let structure = StructureReport::compute(&preds, &campaign.map).expect("structure");
    // Class centroids are means of on-map training points inside one cell;
    // allow a small tolerance for centroids of corner cells.
    assert!(
        structure.on_map_fraction > 0.9,
        "NObLe on-map fraction {}",
        structure.on_map_fraction
    );
    assert!(structure.mean_off_map_distance < 1.0);
}

#[test]
fn deep_regression_predicts_off_map_noble_does_not() {
    let campaign = campaign();
    let mut regression =
        DeepRegression::train(&campaign, &RegressionConfig::small()).expect("training");
    let features = campaign.features(&campaign.test);
    let raw = regression.predict(&features).expect("predict");
    let raw_structure = StructureReport::compute(&raw, &campaign.map).expect("structure");
    // Regression has no notion of the map: a noticeable share of its
    // predictions must land off accessible space (courtyards/gaps).
    assert!(
        raw_structure.on_map_fraction < 0.9,
        "regression on-map fraction suspiciously high: {}",
        raw_structure.on_map_fraction
    );
}

#[test]
fn building_and_floor_heads_are_accurate() {
    let campaign = campaign();
    let mut noble_model = WifiNoble::train(&campaign, &noble_config()).expect("training");
    let report = noble_model
        .evaluate(&campaign, &campaign.test)
        .expect("eval");
    assert!(
        report.building_accuracy > 0.9,
        "building accuracy {}",
        report.building_accuracy
    );
    assert!(
        report.floor_accuracy > 0.7,
        "floor accuracy {}",
        report.floor_accuracy
    );
}

#[test]
fn noble_competitive_with_knn_radio_map() {
    let campaign = campaign();
    let mut noble_model = WifiNoble::train(&campaign, &noble_config()).expect("training");
    let noble_report = noble_model
        .evaluate(&campaign, &campaign.test)
        .expect("eval");
    let knn = KnnFingerprint::fit(&campaign, 5).expect("knn");
    let knn_summary = knn.evaluate(&campaign, &campaign.test).expect("knn eval");
    // NObLe should at least be in the same class as WkNN (within 2x).
    assert!(
        noble_report.position_error.mean < knn_summary.mean * 2.0,
        "NObLe {} vs kNN {}",
        noble_report.position_error.mean,
        knn_summary.mean
    );
}
