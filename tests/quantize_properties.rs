//! Property-based tests of the quantization/geometry invariants the NObLe
//! decode path relies on.

use noble_suite::noble_geo::{Building, CampusMap, Point, Polygon};
use noble_suite::noble_quantize::{DecodePolicy, GridQuantizer};
use proptest::prelude::*;

fn arbitrary_points(max: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec(
        (
            prop::num::f64::NORMAL.prop_map(|v| (v % 100.0).abs()),
            prop::num::f64::NORMAL.prop_map(|v| (v % 100.0).abs()),
        ),
        1..max,
    )
}

proptest! {
    /// Decoding a training point's own class never errs by more than the
    /// cell diagonal (cell-center policy).
    #[test]
    fn decode_error_bounded_by_cell_diagonal(raw in arbitrary_points(60), tau in 0.5f64..8.0) {
        let points: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let q = GridQuantizer::fit(&points, tau, DecodePolicy::CellCenter).unwrap();
        let bound = tau * std::f64::consts::SQRT_2 / 2.0 + 1e-6;
        for p in &points {
            let class = q.quantize(*p).expect("training point in occupied cell");
            let decoded = q.decode(class).unwrap();
            prop_assert!(decoded.distance(*p) <= bound,
                "decode error {} exceeds half-diagonal {bound}", decoded.distance(*p));
        }
    }

    /// Sample-mean decode always lands inside the convex hull bounding box
    /// of the samples (it is a mean of training points in the cell).
    #[test]
    fn sample_mean_decode_within_data_bounds(raw in arbitrary_points(60), tau in 0.5f64..8.0) {
        let points: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let q = GridQuantizer::fit(&points, tau, DecodePolicy::SampleMean).unwrap();
        let min_x = points.iter().map(|p| p.x).fold(f64::INFINITY, f64::min);
        let max_x = points.iter().map(|p| p.x).fold(f64::NEG_INFINITY, f64::max);
        let min_y = points.iter().map(|p| p.y).fold(f64::INFINITY, f64::min);
        let max_y = points.iter().map(|p| p.y).fold(f64::NEG_INFINITY, f64::max);
        for class in 0..q.num_classes() {
            let c = q.decode(class).unwrap();
            prop_assert!(c.x >= min_x - 1e-9 && c.x <= max_x + 1e-9);
            prop_assert!(c.y >= min_y - 1e-9 && c.y <= max_y + 1e-9);
        }
    }

    /// quantize_nearest is total: every probe resolves to a registered
    /// class, and for points in occupied cells it agrees with quantize.
    #[test]
    fn quantize_nearest_total_and_consistent(
        raw in arbitrary_points(40),
        probe_x in -50.0f64..150.0,
        probe_y in -50.0f64..150.0,
    ) {
        let points: Vec<Point> = raw.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let q = GridQuantizer::fit(&points, 2.0, DecodePolicy::CellCenter).unwrap();
        let probe = Point::new(probe_x, probe_y);
        let nearest = q.quantize_nearest(probe);
        prop_assert!(nearest < q.num_classes());
        if let Some(direct) = q.quantize(probe) {
            prop_assert_eq!(direct, nearest);
        }
    }

    /// Map projection is idempotent and always lands on accessible space.
    #[test]
    fn projection_idempotent(px in -50.0f64..100.0, py in -50.0f64..100.0) {
        let building = Building::new(
            Polygon::rectangle(0.0, 0.0, 40.0, 30.0).unwrap(), 2,
        ).unwrap().with_hole(Polygon::rectangle(10.0, 10.0, 30.0, 20.0).unwrap());
        let map = CampusMap::new(vec![building]).unwrap();
        let p = Point::new(px, py);
        let projected = map.project(p);
        prop_assert!(map.is_accessible(projected), "projection left the map: {projected}");
        let twice = map.project(projected);
        prop_assert!(projected.distance(twice) < 1e-6, "projection not idempotent");
    }

    /// Off-map distance is zero exactly for accessible points.
    #[test]
    fn off_map_distance_zero_iff_accessible(px in -10.0f64..60.0, py in -10.0f64..40.0) {
        let building = Building::new(
            Polygon::rectangle(0.0, 0.0, 40.0, 30.0).unwrap(), 1,
        ).unwrap();
        let map = CampusMap::new(vec![building]).unwrap();
        let p = Point::new(px, py);
        let d = map.off_map_distance(p);
        if map.is_accessible(p) {
            prop_assert!(d < 1e-9);
        } else {
            prop_assert!(d > 0.0);
        }
    }
}
